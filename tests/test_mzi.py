"""Tests for the MZI modulator model (paper Eq. 7b)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.photonics import MZIModulator


@pytest.fixture
def ziebell() -> MZIModulator:
    return MZIModulator(insertion_loss_db=4.5, extinction_ratio_db=13.22)


class TestFractions:
    def test_paper_il_fraction(self, ziebell):
        # Section V-A: 4.5 dB -> 35.48 %
        assert ziebell.il_fraction == pytest.approx(0.3548, abs=2e-4)

    def test_paper_er_fraction(self, ziebell):
        # Section V-A: 13.22 dB -> 4.76 %
        assert ziebell.er_fraction == pytest.approx(0.0476, abs=2e-4)


class TestEq7b:
    def test_constructive_state(self, ziebell):
        assert ziebell.transmission(0) == pytest.approx(ziebell.il_fraction)

    def test_destructive_state(self, ziebell):
        assert ziebell.transmission(1) == pytest.approx(
            ziebell.il_fraction * ziebell.er_fraction
        )

    def test_array_of_bits(self, ziebell):
        bits = np.array([0, 1, 1, 0])
        out = ziebell.transmission(bits)
        expected = np.where(
            bits == 0,
            ziebell.il_fraction,
            ziebell.il_fraction * ziebell.er_fraction,
        )
        np.testing.assert_allclose(out, expected)

    def test_rejects_non_binary(self, ziebell):
        with pytest.raises(ConfigurationError):
            ziebell.transmission(0.5)

    @given(
        il=st.floats(min_value=0.0, max_value=10.0),
        er=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_destructive_below_constructive(self, il, er):
        mzi = MZIModulator(insertion_loss_db=il, extinction_ratio_db=er)
        assert mzi.transmission(1) < mzi.transmission(0)


class TestPhaseTransmission:
    def test_endpoints_match_eq7b(self, ziebell):
        assert ziebell.phase_transmission(0.0) == pytest.approx(
            ziebell.transmission(0)
        )
        assert ziebell.phase_transmission(math.pi) == pytest.approx(
            ziebell.transmission(1)
        )

    def test_monotone_from_constructive_to_destructive(self, ziebell):
        phases = np.linspace(0.0, math.pi, 64)
        values = ziebell.phase_transmission(phases)
        assert np.all(np.diff(values) < 0)


class TestMeanTransmission:
    def test_extremes(self, ziebell):
        assert ziebell.mean_transmission(0.0) == pytest.approx(
            ziebell.transmission(0)
        )
        assert ziebell.mean_transmission(1.0) == pytest.approx(
            ziebell.transmission(1)
        )

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    def test_is_expectation_of_eq7b(self, p):
        mzi = MZIModulator(insertion_loss_db=4.5, extinction_ratio_db=10.0)
        expected = (1 - p) * mzi.transmission(0) + p * mzi.transmission(1)
        assert mzi.mean_transmission(p) == pytest.approx(expected)

    def test_rejects_bad_probability(self, ziebell):
        with pytest.raises(ConfigurationError):
            ziebell.mean_transmission(1.5)


class TestMetadata:
    def test_bit_period(self):
        mzi = MZIModulator(
            insertion_loss_db=6.5,
            extinction_ratio_db=7.5,
            modulation_speed_gbps=60.0,
        )
        assert mzi.bit_period_s() == pytest.approx(1.0 / 60e9)

    def test_bit_period_requires_speed(self):
        mzi = MZIModulator(insertion_loss_db=6.5, extinction_ratio_db=7.5)
        with pytest.raises(ConfigurationError):
            mzi.bit_period_s()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MZIModulator(insertion_loss_db=-1.0, extinction_ratio_db=3.0)
        with pytest.raises(ConfigurationError):
            MZIModulator(insertion_loss_db=1.0, extinction_ratio_db=0.0)
        with pytest.raises(ConfigurationError):
            MZIModulator(
                insertion_loss_db=1.0,
                extinction_ratio_db=3.0,
                modulation_speed_gbps=-40.0,
            )

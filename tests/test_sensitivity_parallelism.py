"""Tests for sensitivity analysis and the parallel-implementation study."""

import pytest

from repro.core.design import mrr_first_design
from repro.errors import ConfigurationError
from repro.exploration.parallelism import (
    FootprintModel,
    max_instances_within_density,
    parallel_study,
)
from repro.exploration.sensitivity import (
    headline_energy_sensitivities,
    relative_sensitivity,
)


class TestRelativeSensitivity:
    def test_linear_metric_gives_one(self):
        assert relative_sensitivity(lambda p: 3.0 * p, 2.0) == pytest.approx(
            1.0
        )

    def test_inverse_metric_gives_minus_one(self):
        assert relative_sensitivity(lambda p: 1.0 / p, 2.0) == pytest.approx(
            -1.0, abs=1e-3
        )

    def test_flat_metric_gives_zero(self):
        assert relative_sensitivity(lambda p: 7.0, 2.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            relative_sensitivity(lambda p: p, 0.0)
        with pytest.raises(ConfigurationError):
            relative_sensitivity(lambda p: p, 1.0, step_fraction=0.9)
        with pytest.raises(ConfigurationError):
            relative_sensitivity(lambda p: 0.0, 1.0)


class TestHeadlineSensitivities:
    @pytest.fixture(scope="class")
    def sensitivities(self):
        return headline_energy_sensitivities()

    def test_efficiency_is_inverse(self, sensitivities):
        # E ~ 1/eta exactly.
        assert sensitivities["laser_efficiency"] == pytest.approx(-1.0, abs=0.02)

    def test_better_tuning_saves_energy(self, sensitivities):
        assert sensitivities["ote_nm_per_mw"] < 0.0

    def test_loss_costs_energy(self, sensitivities):
        assert sensitivities["insertion_loss_db"] > 0.0

    def test_pulse_width_scales_pump_share_only(self, sensitivities):
        # Pump is ~78 % of the total at the headline point, so the
        # sensitivity must sit strictly between 0 and 1.
        assert 0.0 < sensitivities["pulse_width_s"] < 1.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            headline_energy_sensitivities(parameters=["warp_factor"])


class TestParallelism:
    @pytest.fixture(scope="class")
    def design(self):
        return mrr_first_design(order=2, wl_spacing_nm=0.165)

    def test_throughput_scales_linearly(self, design):
        one = parallel_study(design, 1)
        four = parallel_study(design, 4)
        assert four.throughput_bits_per_s == pytest.approx(
            4 * one.throughput_bits_per_s
        )
        assert four.total_wall_power_mw == pytest.approx(
            4 * one.total_wall_power_mw
        )

    def test_power_density_constant_in_p(self, design):
        one = parallel_study(design, 1)
        eight = parallel_study(design, 8)
        assert one.power_density_mw_per_mm2 == pytest.approx(
            eight.power_density_mw_per_mm2
        )

    def test_wall_power_matches_energy_model(self, design):
        from repro.core.energy import energy_breakdown

        breakdown = energy_breakdown(design.params)
        study = parallel_study(design, 1)
        expected_mw = breakdown.total_energy_j * 1e9 * 1e3
        assert study.total_wall_power_mw == pytest.approx(expected_mw)

    def test_density_budget_enforced(self, design):
        with pytest.raises(ConfigurationError):
            parallel_study(design, 2, max_power_density_mw_per_mm2=1.0)

    def test_max_instances(self, design):
        assert max_instances_within_density(design) > 0
        assert (
            max_instances_within_density(
                design, max_power_density_mw_per_mm2=1.0
            )
            == 0
        )

    def test_footprint_model(self):
        footprint = FootprintModel()
        a2 = footprint.instance_area_mm2(2)
        a4 = footprint.instance_area_mm2(4)
        assert a4 > a2
        with pytest.raises(ConfigurationError):
            footprint.instance_area_mm2(0)
        with pytest.raises(ConfigurationError):
            FootprintModel(mzi_area_mm2=-1.0)

    def test_validation(self, design):
        with pytest.raises(ConfigurationError):
            parallel_study("design", 1)
        with pytest.raises(ConfigurationError):
            parallel_study(design, 0)

"""Tests for the SNR/BER models (paper Eqs. 8-9)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import paper_section5a_parameters
from repro.core.snr import (
    ber_for_snr,
    circuit_ber,
    circuit_snr,
    minimum_probe_power_mw,
    required_snr_for_ber,
    snr_eq8,
    worst_case_eye,
)
from repro.core.design import mrr_first_design
from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.photonics.devices import DENSE_RING_PROFILE


class TestEq9:
    def test_known_value(self):
        # SNR such that Q = SNR/(2 sqrt(2)) = 3.3612 gives BER 1e-6.
        snr = required_snr_for_ber(1e-6)
        assert ber_for_snr(snr) == pytest.approx(1e-6, rel=1e-6)

    @given(ber=st.floats(min_value=1e-12, max_value=0.4))
    def test_roundtrip(self, ber):
        assert ber_for_snr(required_snr_for_ber(ber)) == pytest.approx(
            ber, rel=1e-6
        )

    def test_monotone(self):
        assert required_snr_for_ber(1e-6) > required_snr_for_ber(1e-2)
        assert ber_for_snr(10.0) < ber_for_snr(5.0)

    def test_fig6b_half_power_claim(self):
        # Paper Fig. 6(b): targeting 1e-2 instead of 1e-6 halves the
        # required probe power (SNR ratio ~ 0.49).
        ratio = required_snr_for_ber(1e-2) / required_snr_for_ber(1e-6)
        assert ratio == pytest.approx(0.49, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_snr_for_ber(0.0)
        with pytest.raises(ConfigurationError):
            required_snr_for_ber(0.6)
        with pytest.raises(ConfigurationError):
            ber_for_snr(-1.0)


class TestEyeAndSNR:
    def test_paper_eye_from_fig5_bands(self):
        eye = worst_case_eye(paper_section5a_parameters())
        # Fig. 5(c): ~0.477 - ~0.099 = ~0.38 (per 1 mW probe).
        assert eye.opening == pytest.approx(0.38, abs=0.02)
        assert eye.is_open

    def test_snr_scales_with_probe_power(self):
        params = paper_section5a_parameters()
        snr1 = circuit_snr(params.with_probe_power(1.0))
        snr2 = circuit_snr(params.with_probe_power(2.0))
        assert snr2 == pytest.approx(2.0 * snr1, rel=1e-9)

    def test_eq8_upper_bounds_worstcase(self):
        params = paper_section5a_parameters()
        # The literal Eq. 8 sum ignores joint worst-case coefficient
        # patterns, so it is mildly optimistic relative to the exhaustive
        # eye — but within ~30 % at the paper's 1 nm operating point.
        eq8 = snr_eq8(params)
        exhaustive = circuit_snr(params, method="worstcase")
        assert eq8 >= exhaustive
        assert eq8 == pytest.approx(exhaustive, rel=0.3)

    def test_ber_of_closed_eye_is_half(self):
        # Squeeze channels until crosstalk closes the eye.
        design = mrr_first_design(
            order=2,
            wl_spacing_nm=0.06,
            ring_profile=DENSE_RING_PROFILE,
            probe_power_mw=1.0,
        )
        assert circuit_ber(design.params) == pytest.approx(0.5)

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            circuit_snr(paper_section5a_parameters(), method="guess")


class TestMinimumProbePower:
    def test_achieves_target_ber(self):
        params = paper_section5a_parameters()
        probe = minimum_probe_power_mw(params, target_ber=1e-6)
        sized = params.with_probe_power(probe)
        assert circuit_ber(sized) == pytest.approx(1e-6, rel=1e-3)

    def test_scales_inversely_with_eye(self):
        params = paper_section5a_parameters()
        p6 = minimum_probe_power_mw(params, target_ber=1e-6)
        p2 = minimum_probe_power_mw(params, target_ber=1e-2)
        assert p2 / p6 == pytest.approx(0.49, abs=0.02)

    def test_closed_eye_raises(self):
        design = mrr_first_design(
            order=2,
            wl_spacing_nm=0.06,
            ring_profile=DENSE_RING_PROFILE,
            probe_power_mw=1.0,
        )
        with pytest.raises(DesignInfeasibleError):
            minimum_probe_power_mw(design.params)

    def test_eq8_method_also_supported(self):
        params = paper_section5a_parameters()
        probe = minimum_probe_power_mw(params, method="eq8")
        assert probe > 0.0
        assert math.isfinite(probe)

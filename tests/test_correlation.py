"""Tests for stream correlation metrics (SCC)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stochastic import Bitstream, ComparatorSNG
from repro.stochastic.correlation import (
    and_gate_error,
    autocorrelation,
    overlap_probability,
    scc,
)
from repro.stochastic.sng import SobolLikeSNG


class TestSCC:
    def test_identical_streams_are_plus_one(self, rng):
        stream = Bitstream.from_probability(0.5, 4096, rng)
        assert scc(stream, stream) == pytest.approx(1.0)

    def test_complementary_streams_are_minus_one(self, rng):
        stream = Bitstream.from_probability(0.5, 4096, rng)
        assert scc(stream, ~stream) == pytest.approx(-1.0)

    def test_independent_streams_near_zero(self, rng):
        a = Bitstream.from_probability(0.5, 50_000, rng)
        b = Bitstream.from_probability(0.5, 50_000, rng)
        assert abs(scc(a, b)) < 0.05

    def test_decorrelated_sngs_near_zero(self):
        a = ComparatorSNG(width=16, seed=1).generate(0.5, 30_000)
        b = ComparatorSNG(width=16, seed=0x4D2).generate(0.5, 30_000)
        assert abs(scc(a, b)) < 0.05

    def test_constant_stream_degenerate(self):
        ones = Bitstream([1] * 64)
        other = Bitstream([0, 1] * 32)
        assert scc(ones, other) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            scc(Bitstream([0, 1]), Bitstream([1]))

    def test_type_check(self):
        with pytest.raises(ConfigurationError):
            overlap_probability([0, 1], Bitstream([0, 1]))


class TestOverlapAndGateError:
    def test_overlap_probability(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        assert overlap_probability(a, b) == pytest.approx(0.25)

    def test_and_gate_error_zero_for_independent(self, rng):
        a = Bitstream.from_probability(0.4, 100_000, rng)
        b = Bitstream.from_probability(0.6, 100_000, rng)
        assert and_gate_error(a, b) < 0.01

    def test_and_gate_error_large_for_correlated(self, rng):
        a = Bitstream.from_probability(0.5, 10_000, rng)
        # Maximal positive correlation: AND computes min, not product.
        assert and_gate_error(a, a) == pytest.approx(0.25, abs=0.02)


class TestAutocorrelation:
    def test_white_stream_near_zero(self, rng):
        stream = Bitstream.from_probability(0.5, 50_000, rng)
        lags = autocorrelation(stream, max_lag=8)
        assert np.max(np.abs(lags)) < 0.03

    def test_alternating_stream_strongly_negative_at_lag_one(self):
        stream = Bitstream([0, 1] * 512)
        lags = autocorrelation(stream, max_lag=2)
        assert lags[0] == pytest.approx(-1.0)
        assert lags[1] == pytest.approx(1.0)

    def test_sobol_like_streams_have_structure(self):
        # Low-discrepancy generators trade whiteness for accuracy: the
        # autocorrelation is visibly non-zero. This documents the
        # tradeoff rather than asserting a specific value.
        stream = SobolLikeSNG(bits=16).generate(0.5, 8192)
        lags = autocorrelation(stream, max_lag=4)
        assert np.max(np.abs(lags)) > 0.2

    def test_constant_stream_zero(self):
        lags = autocorrelation(Bitstream([1] * 128), max_lag=4)
        np.testing.assert_allclose(lags, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            autocorrelation(Bitstream([0, 1, 0]), max_lag=3)
        with pytest.raises(ConfigurationError):
            autocorrelation([0, 1], max_lag=1)

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.photonics import devices


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20190325)


@pytest.fixture
def coarse_profile() -> devices.RingProfile:
    """Ring technology of the Fig. 5 study (1 nm grid)."""
    return devices.COARSE_RING_PROFILE


@pytest.fixture
def dense_profile() -> devices.RingProfile:
    """Ring technology of the Fig. 6-7 studies (0.1-0.3 nm grid)."""
    return devices.DENSE_RING_PROFILE

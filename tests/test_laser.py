"""Tests for laser models (CW probes, pulsed pump, probe banks)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.photonics import CWLaser, LaserBank, PulsedLaser


class TestCWLaser:
    def test_electrical_power(self):
        laser = CWLaser(power_mw=1.0, efficiency=0.2)
        assert laser.electrical_power_mw == pytest.approx(5.0)

    def test_energy_per_bit(self):
        # 1 mW optical at 1 Gb/s, eta = 20 % -> 5 pJ/bit wall-plug.
        laser = CWLaser(power_mw=1.0, efficiency=0.2)
        assert laser.energy_per_bit_j(1e9) == pytest.approx(5e-12)

    def test_optical_energy_per_bit(self):
        laser = CWLaser(power_mw=2.0, efficiency=0.5)
        assert laser.optical_energy_per_bit_j(1e9) == pytest.approx(2e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CWLaser(power_mw=-1.0)
        with pytest.raises(ConfigurationError):
            CWLaser(power_mw=1.0, efficiency=0.0)
        with pytest.raises(ConfigurationError):
            CWLaser(power_mw=1.0, efficiency=1.5)


class TestPulsedLaser:
    def test_paper_pump_energy(self):
        # Section V-C check: 591.8 mW peak, 26 ps pulse, eta = 20 %
        # -> 591.8e-3 * 26e-12 / 0.2 = 76.9 pJ per pulse.
        laser = PulsedLaser(peak_power_mw=591.8)
        assert laser.energy_per_pulse_j == pytest.approx(76.93e-12, rel=1e-3)

    def test_duty_cycle(self):
        laser = PulsedLaser(peak_power_mw=100.0, pulse_width_s=26e-12)
        assert laser.duty_cycle(1e9) == pytest.approx(0.026)

    def test_pulse_must_fit_bit_period(self):
        laser = PulsedLaser(peak_power_mw=100.0, pulse_width_s=2e-9)
        with pytest.raises(ConfigurationError):
            laser.duty_cycle(1e9)

    def test_average_power(self):
        laser = PulsedLaser(peak_power_mw=100.0, pulse_width_s=26e-12)
        assert laser.average_power_mw(1e9) == pytest.approx(2.6)

    def test_energy_per_bit_equals_per_pulse(self):
        laser = PulsedLaser(peak_power_mw=100.0)
        assert laser.energy_per_bit_j(1e9) == laser.energy_per_pulse_j

    @given(peak=st.floats(min_value=0.0, max_value=1e4))
    def test_energy_linear_in_peak_power(self, peak):
        laser = PulsedLaser(peak_power_mw=peak)
        assert laser.energy_per_pulse_j == pytest.approx(
            peak * 1e-3 * 26e-12 / 0.2
        )


class TestLaserBank:
    def test_uniform_bank(self):
        bank = LaserBank.uniform(3, 1.0, [1548.0, 1549.0, 1550.0])
        assert len(bank) == 3
        assert bank.total_power_mw == pytest.approx(3.0)

    def test_total_electrical_power(self):
        bank = LaserBank.uniform(2, 1.0, [1549.0, 1550.0], efficiency=0.2)
        assert bank.total_electrical_power_mw == pytest.approx(10.0)

    def test_energy_per_bit(self):
        # (n+1) probes: 3 x 1 mW at 1 Gb/s, eta = 0.2 -> 15 pJ/bit.
        bank = LaserBank.uniform(3, 1.0, [1548.0, 1549.0, 1550.0], efficiency=0.2)
        assert bank.energy_per_bit_j(1e9) == pytest.approx(15e-12)

    def test_wavelength_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            LaserBank.uniform(3, 1.0, [1550.0])

    def test_empty_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            LaserBank([])

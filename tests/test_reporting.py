"""Tests for table formatting and CSV output."""

import csv

import pytest

from repro.errors import ConfigurationError
from repro.reporting import format_table, write_csv
from repro.reporting.tables import format_value


class TestFormatValue:
    def test_floats_trimmed(self):
        assert format_value(0.091) == "0.091"
        assert format_value(591.85) == "591.9"

    def test_specials(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(0.0) == "0"
        assert format_value(True) == "True"
        assert format_value("text") == "text"

    def test_extreme_magnitudes_use_scientific(self):
        assert "e" in format_value(1.23e-7)


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_column_selection_and_missing_keys(self):
        text = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])
        with pytest.raises(ConfigurationError):
            format_table([{"a": 1}], columns=[])


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = write_csv(tmp_path / "out" / "data.csv", rows)
        with open(path) as handle:
            back = list(csv.DictReader(handle))
        assert back == [{"x": "1", "y": "a"}, {"x": "2", "y": "b"}]

    def test_column_order(self, tmp_path):
        path = write_csv(
            tmp_path / "data.csv", [{"b": 2, "a": 1}], columns=["a", "b"]
        )
        header = open(path).readline().strip()
        assert header == "a,b"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv(tmp_path / "x.csv", [])

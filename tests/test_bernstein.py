"""Tests for Bernstein polynomial machinery (paper Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.stochastic import (
    BernsteinPolynomial,
    PowerPolynomial,
    bernstein_basis,
    degree_elevation,
    power_to_bernstein,
)
from repro.stochastic.bernstein import bernstein_to_power
from repro.stochastic.polynomial import PAPER_EXAMPLE_F1

unit_floats = st.floats(min_value=0.0, max_value=1.0)
coefficient_lists = st.lists(
    st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=8
)


class TestBasis:
    @given(x=unit_floats)
    def test_partition_of_unity(self, x):
        n = 5
        total = sum(bernstein_basis(i, n, x) for i in range(n + 1))
        assert total == pytest.approx(1.0, abs=1e-12)

    @given(x=unit_floats)
    def test_non_negative_on_unit_interval(self, x):
        for i in range(4):
            assert bernstein_basis(i, 3, x) >= -1e-15

    def test_binomial_pmf_identity(self):
        # B_{k,n}(x) is the Binomial(n, x) pmf at k - the fact that makes
        # the ReSC adder+mux compute Eq. 1.
        from scipy.stats import binom

        x, n = 0.3, 6
        for k in range(n + 1):
            assert bernstein_basis(k, n, x) == pytest.approx(
                binom.pmf(k, n, x)
            )

    def test_index_validation(self):
        with pytest.raises(ConfigurationError):
            bernstein_basis(4, 3, 0.5)
        with pytest.raises(ConfigurationError):
            bernstein_basis(-1, 3, 0.5)


class TestPaperExample:
    """The Fig. 1(b) golden example ties the whole pipeline together."""

    def test_power_to_bernstein_gives_paper_coefficients(self):
        b = power_to_bernstein(PAPER_EXAMPLE_F1.coefficients)
        np.testing.assert_allclose(b, [2 / 8, 5 / 8, 3 / 8, 6 / 8])

    def test_value_at_half(self):
        # f1(0.5) = 1/4 + 9/16 - 15/32 + 5/32 = 0.5
        poly = BernsteinPolynomial.from_power(PAPER_EXAMPLE_F1)
        assert poly(0.5) == pytest.approx(0.5)

    def test_agrees_with_power_form_everywhere(self):
        poly = BernsteinPolynomial.from_power(PAPER_EXAMPLE_F1)
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(poly(xs), PAPER_EXAMPLE_F1(xs), atol=1e-12)

    def test_is_sc_implementable(self):
        poly = BernsteinPolynomial.from_power(PAPER_EXAMPLE_F1)
        assert poly.is_sc_implementable()


class TestConversions:
    @given(coeffs=coefficient_lists)
    def test_roundtrip_power_bernstein_power(self, coeffs):
        back = bernstein_to_power(power_to_bernstein(coeffs))
        np.testing.assert_allclose(back, coeffs, atol=1e-8)

    @given(coeffs=coefficient_lists, x=unit_floats)
    def test_conversion_preserves_values(self, coeffs, x):
        power = PowerPolynomial(coeffs)
        bern = BernsteinPolynomial.from_power(power)
        assert bern(x) == pytest.approx(power(x), abs=1e-8)

    def test_to_power_inverse(self):
        bern = BernsteinPolynomial([0.25, 0.625, 0.375, 0.75])
        power = bern.to_power()
        np.testing.assert_allclose(
            power.coefficients, PAPER_EXAMPLE_F1.coefficients, atol=1e-12
        )


class TestDegreeElevation:
    @given(coeffs=coefficient_lists, x=unit_floats)
    def test_elevation_preserves_function(self, coeffs, x):
        poly = BernsteinPolynomial(coeffs)
        elevated = poly.elevated(times=2)
        assert elevated.degree == poly.degree + 2
        assert elevated(x) == pytest.approx(poly(x), abs=1e-9)

    def test_endpoint_interpolation_preserved(self):
        poly = BernsteinPolynomial([0.1, 0.9, 0.2])
        elevated = poly.elevated()
        assert elevated.coefficients[0] == pytest.approx(0.1)
        assert elevated.coefficients[-1] == pytest.approx(0.2)

    def test_elevation_repairs_out_of_range_coefficients(self):
        # x*(1-x)*4*0.9 has Bernstein coefficients above 1 at low degree
        # but is bounded by 0.9 on [0, 1].
        power = PowerPolynomial([0.0, 3.6, -3.6])
        bern = BernsteinPolynomial.from_power(power)
        assert not bern.is_sc_implementable()
        repaired = bern.elevated_until_implementable(max_degree=64)
        assert repaired.is_sc_implementable()
        xs = np.linspace(0, 1, 33)
        np.testing.assert_allclose(repaired(xs), power(xs), atol=1e-9)

    def test_elevation_gives_up_for_unbounded_functions(self):
        bern = BernsteinPolynomial.from_power(PowerPolynomial([0.0, 2.0]))
        with pytest.raises(DesignInfeasibleError):
            bern.elevated_until_implementable(max_degree=16)

    def test_degree_elevation_validates(self):
        with pytest.raises(ConfigurationError):
            degree_elevation([])


class TestFromFunction:
    def test_operator_is_implementable_for_unit_functions(self):
        poly = BernsteinPolynomial.from_function(
            lambda x: np.asarray(x) ** 0.45, 6, method="operator"
        )
        assert poly.is_sc_implementable()
        assert poly.degree == 6

    def test_operator_endpoint_interpolation(self):
        poly = BernsteinPolynomial.from_function(
            lambda x: np.asarray(x) ** 2, 4, method="operator"
        )
        assert poly(0.0) == pytest.approx(0.0)
        assert poly(1.0) == pytest.approx(1.0)

    def test_least_squares_more_accurate_than_operator(self):
        def target(x):
            return np.asarray(x) ** 0.45
        xs = np.linspace(0, 1, 201)
        op = BernsteinPolynomial.from_function(target, 6, method="operator")
        ls = BernsteinPolynomial.from_function(target, 6, method="least_squares")
        op_err = np.mean((op(xs) - target(xs)) ** 2)
        ls_err = np.mean((ls(xs) - target(xs)) ** 2)
        assert ls_err < op_err

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            BernsteinPolynomial.from_function(lambda x: x, 3, method="magic")

    def test_evaluation_shapes(self):
        poly = BernsteinPolynomial([0.2, 0.8])
        assert isinstance(poly(0.5), float)
        assert poly(np.array([0.0, 1.0])).shape == (2,)

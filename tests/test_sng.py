"""Tests for stochastic number generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import (
    ChaoticLaserBitSource,
    ComparatorSNG,
    CounterSNG,
    SobolLikeSNG,
)
from repro.stochastic.sng import make_independent_sngs

probabilities = st.floats(min_value=0.0, max_value=1.0)


class TestComparatorSNG:
    @given(p=probabilities)
    @settings(max_examples=25)
    def test_unbiased_over_full_period(self, p):
        sng = ComparatorSNG(width=10, seed=1)
        stream = sng.generate(p, 1023)
        # Over one full LFSR period the comparator makes at most a
        # quantization error of 1/2**width per bit.
        assert stream.probability == pytest.approx(p, abs=2.0 / 1023 + 1e-3)

    def test_deterministic_for_same_seed(self):
        a = ComparatorSNG(width=8, seed=3).generate(0.3, 100)
        b = ComparatorSNG(width=8, seed=3).generate(0.3, 100)
        assert a == b

    def test_different_seeds_decorrelate(self):
        a = ComparatorSNG(width=12, seed=1).generate(0.5, 4095)
        b = ComparatorSNG(width=12, seed=2222).generate(0.5, 4095)
        overlap = np.mean(a.bits == b.bits)
        assert 0.4 < overlap < 0.6  # uncorrelated streams agree ~50 %

    def test_validation(self):
        sng = ComparatorSNG()
        with pytest.raises(ConfigurationError):
            sng.generate(1.5, 10)
        with pytest.raises(ConfigurationError):
            sng.generate(0.5, 0)


class TestCounterSNG:
    @given(p=probabilities)
    @settings(max_examples=25)
    def test_exact_ones_count(self, p):
        stream = CounterSNG().generate(p, 256)
        assert stream.ones_count == round(p * 256)


class TestSobolLikeSNG:
    def test_low_discrepancy_beats_bernoulli_rate(self):
        sng = SobolLikeSNG(bits=16)
        stream = sng.generate(0.37, 4096)
        # O(1/N) error: much tighter than the ~0.0075 Bernoulli sigma.
        assert abs(stream.probability - 0.37) < 1e-3

    def test_offset_decorrelates(self):
        a = SobolLikeSNG(bits=16, bit_offset=0).generate(0.5, 512)
        b = SobolLikeSNG(bits=16, bit_offset=977).generate(0.5, 512)
        assert a != b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SobolLikeSNG(bits=0)
        with pytest.raises(ConfigurationError):
            SobolLikeSNG(bit_offset=-1)


class TestChaoticLaserBitSource:
    def test_uniform_samples_cover_unit_interval(self):
        source = ChaoticLaserBitSource(seed_intensity=0.2)
        samples = source.uniform(20_000)
        assert samples.min() >= 0.0
        assert samples.max() <= 1.0
        assert samples.mean() == pytest.approx(0.5, abs=0.02)
        # Quartiles of a uniform distribution.
        assert np.quantile(samples, 0.25) == pytest.approx(0.25, abs=0.03)
        assert np.quantile(samples, 0.75) == pytest.approx(0.75, abs=0.03)

    def test_random_bits_balanced(self):
        source = ChaoticLaserBitSource(seed_intensity=0.3)
        bits = source.random_bits(20_000)
        assert bits.mean() == pytest.approx(0.5, abs=0.02)

    def test_generates_target_probability(self):
        source = ChaoticLaserBitSource(seed_intensity=0.4)
        stream = source.generate(0.7, 20_000)
        assert stream.probability == pytest.approx(0.7, abs=0.02)

    def test_rejects_fixed_points(self):
        for bad in (0.0, 0.5, 0.75, 1.0):
            with pytest.raises(ConfigurationError):
                ChaoticLaserBitSource(seed_intensity=bad)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ConfigurationError):
            ChaoticLaserBitSource(warmup=-1)


class TestGenerateBatch:
    @pytest.mark.parametrize(
        "sng",
        [
            ComparatorSNG(width=10, seed=5),
            CounterSNG(),
            SobolLikeSNG(bits=12, bit_offset=7),
            ChaoticLaserBitSource(seed_intensity=0.3),
        ],
        ids=["lfsr", "counter", "sobol", "chaotic"],
    )
    def test_shape_dtype_and_probabilities(self, sng):
        values = np.asarray([0.0, 0.25, 0.5, 1.0])
        batch = sng.generate_batch(values, 1024)
        assert batch.shape == (4, 1024)
        assert batch.dtype == np.uint8
        assert batch[0].sum() == 0
        assert batch[3].sum() == 1024
        assert abs(batch[2].mean() - 0.5) < 0.1

    def test_batching_is_stateless(self):
        sng = ComparatorSNG(width=10, seed=5)
        first = sng.generate_batch([0.5], 128)
        second = sng.generate_batch([0.5], 128)
        assert np.array_equal(first, second)

    def test_validation(self):
        sng = ComparatorSNG()
        with pytest.raises(ConfigurationError):
            sng.generate_batch([1.5], 10)
        with pytest.raises(ConfigurationError):
            sng.generate_batch([0.5], 0)
        with pytest.raises(ConfigurationError):
            sng.generate_batch([], 10)


class TestFactory:
    @pytest.mark.parametrize("kind", ["lfsr", "counter", "sobol", "chaotic"])
    def test_builds_requested_count(self, kind):
        sngs = make_independent_sngs(4, kind=kind)
        assert len(sngs) == 4
        streams = [sng.generate(0.5, 64) for sng in sngs]
        assert all(len(s) == 64 for s in streams)

    def test_sobol_offsets_never_collide_across_base_seeds(self):
        from repro.stochastic.sng import derive_sobol_offsets

        seeds = np.arange(1, 2000) * 99991 + 7  # congruent mod 99991
        offsets = derive_sobol_offsets(seeds, 1)[:, 0]
        assert len(np.unique(offsets)) == len(seeds)

    def test_lfsr_sngs_are_decorrelated(self):
        sngs = make_independent_sngs(2, kind="lfsr")
        a = sngs[0].generate(0.5, 1000)
        b = sngs[1].generate(0.5, 1000)
        assert a != b

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_independent_sngs(2, kind="quantum")

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            make_independent_sngs(0)

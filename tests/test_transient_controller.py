"""Tests for the transient simulator and the calibration controller."""

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.simulation.controller import CalibrationController
from repro.simulation.transient import TransientSimulator
from repro.stochastic import BernsteinPolynomial


@pytest.fixture(scope="module")
def circuit() -> OpticalStochasticCircuit:
    return OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )


class TestTransientSimulator:
    def test_waveform_shapes(self, circuit):
        sim = TransientSimulator(circuit, samples_per_bit=32)
        result = sim.run(0.5, length=64)
        assert result.time_s.shape == (64 * 32,)
        assert result.received_power_mw.shape == (64 * 32,)
        assert result.sample_times_s.shape == (64,)
        assert len(result.decided_bits) == 64

    def test_pump_duty_cycle(self, circuit):
        sim = TransientSimulator(circuit, samples_per_bit=128)
        result = sim.run(0.5, length=16)
        duty = result.pump_envelope.mean()
        # 26 ps in a 1 ns slot ~ 2.6 % (grid quantization allows ~1 sample).
        assert duty == pytest.approx(0.026, abs=0.01)

    def test_centered_sampling_recovers_computation(self, circuit):
        sim = TransientSimulator(circuit, samples_per_bit=64)
        result = sim.run(0.5, length=2048)
        expected = circuit.expected_value(0.5)
        assert result.decided_bits.probability == pytest.approx(
            expected, abs=0.05
        )

    def test_sampling_outside_pulse_sees_darkness(self, circuit):
        sim = TransientSimulator(circuit, samples_per_bit=64)
        study = sim.synchronization_study([0.0, 0.4], x=0.5, length=512)
        # Offset 0.4 of a bit period = 400 ps away from the 26 ps pulse:
        # the detector integrates darkness and the output collapses.
        assert study["absolute_error"][1] > 5 * study["absolute_error"][0]

    def test_power_only_during_pulse(self, circuit):
        sim = TransientSimulator(circuit, samples_per_bit=64)
        result = sim.run(0.5, length=32)
        dark = result.received_power_mw[result.pump_envelope == 0.0]
        assert np.all(dark == 0.0)

    def test_validation(self, circuit):
        with pytest.raises(ConfigurationError):
            TransientSimulator(circuit, samples_per_bit=4)
        with pytest.raises(ConfigurationError):
            TransientSimulator(circuit, rise_time_s=0.0)
        with pytest.raises(ConfigurationError):
            TransientSimulator(circuit, pulse_position=1.5)
        with pytest.raises(ConfigurationError):
            TransientSimulator("circuit")
        sim = TransientSimulator(circuit)
        with pytest.raises(ConfigurationError):
            sim.run(1.5)
        with pytest.raises(ConfigurationError):
            sim.run(0.5, length=0)


class TestCalibrationController:
    def test_converges_from_positive_drift(self, circuit):
        controller = CalibrationController(circuit)
        trace = controller.calibrate(initial_drift_nm=0.05, iterations=60)
        assert trace.converged
        assert trace.settling_iterations < 30

    def test_converges_from_negative_drift(self, circuit):
        controller = CalibrationController(circuit)
        trace = controller.calibrate(initial_drift_nm=-0.04, iterations=60)
        assert trace.converged

    def test_pilot_power_recovers(self, circuit):
        controller = CalibrationController(circuit)
        trace = controller.calibrate(initial_drift_nm=0.05, iterations=60)
        assert trace.pilot_power_mw[-1] > trace.pilot_power_mw[0]

    def test_robust_to_sensor_noise(self, circuit, rng):
        controller = CalibrationController(circuit)
        trace = controller.calibrate(
            initial_drift_nm=0.05,
            iterations=80,
            sensor_noise_mw=0.001,
            rng=rng,
        )
        assert abs(trace.residual_drift_nm[-1]) < 0.01

    def test_validation(self, circuit):
        with pytest.raises(ConfigurationError):
            CalibrationController(circuit, gain=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationController(circuit, gain_decay=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationController(circuit, dither_nm=-1.0)
        with pytest.raises(ConfigurationError):
            CalibrationController("circuit")
        controller = CalibrationController(circuit)
        with pytest.raises(ConfigurationError):
            controller.calibrate(0.05, iterations=0)
        with pytest.raises(ConfigurationError):
            controller.calibrate(0.05, sensor_noise_mw=-1.0)

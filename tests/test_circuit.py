"""Tests for the OpticalStochasticCircuit facade."""

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.design import mrr_first_design
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.stochastic import BernsteinPolynomial


@pytest.fixture
def circuit() -> OpticalStochasticCircuit:
    params = paper_section5a_parameters()
    return OpticalStochasticCircuit(
        params, BernsteinPolynomial([0.25, 0.5, 0.75])
    )


class TestConstruction:
    def test_from_design(self):
        design = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
        circuit = OpticalStochasticCircuit.from_design(
            design, BernsteinPolynomial([0.2, 0.5, 0.8])
        )
        assert circuit.params is design.params

    def test_default_program_is_ramp(self):
        circuit = OpticalStochasticCircuit(paper_section5a_parameters())
        np.testing.assert_allclose(
            circuit.polynomial.coefficients, [0.0, 0.5, 1.0]
        )
        # Ramp coefficients represent the identity function.
        assert circuit.expected_value(0.3) == pytest.approx(0.3)

    def test_degree_must_match_order(self):
        with pytest.raises(ConfigurationError):
            OpticalStochasticCircuit(
                paper_section5a_parameters(), BernsteinPolynomial([0.1, 0.9])
            )

    def test_rejects_non_implementable_program(self):
        with pytest.raises(ConfigurationError):
            OpticalStochasticCircuit(
                paper_section5a_parameters(),
                BernsteinPolynomial([0.1, 1.9, 0.2]),
            )

    def test_from_design_type_check(self):
        with pytest.raises(ConfigurationError):
            OpticalStochasticCircuit.from_design("design")


class TestAnalyticalViews:
    def test_link_budget_available(self, circuit):
        assert circuit.link_budget().bands_separated

    def test_energy_available(self, circuit):
        assert circuit.energy().total_energy_pj > 0

    def test_snr_and_ber(self, circuit):
        assert circuit.snr() > 0
        assert 0.0 <= circuit.ber() <= 0.5

    def test_spectra_default_window(self, circuit):
        curves = circuit.spectra([0, 1, 0], 2)
        assert "filter" in curves
        assert curves["MRR0"].shape == (2001,)

    def test_expected_value(self, circuit):
        assert circuit.expected_value(0.5) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            circuit.expected_value(1.5)

    def test_speedup_vs_electronic(self, circuit):
        # Paper Section V-C: 1 GHz optics vs 100 MHz CMOS -> 10x.
        assert circuit.speedup_vs_electronic() == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            circuit.speedup_vs_electronic(0.0)

    def test_describe_includes_program(self, circuit):
        assert "Bernstein program" in circuit.describe()

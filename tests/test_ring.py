"""Tests for the MRR transfer functions (paper Eqs. 2-3) and design helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.photonics import ring

couplings = st.floats(min_value=0.05, max_value=0.999)
losses = st.floats(min_value=0.5, max_value=1.0, exclude_min=True)
phases = st.floats(min_value=-50.0, max_value=50.0)


class TestThroughTransmission:
    def test_resonance_floor_formula(self):
        a, r1, r2 = 0.99, 0.95, 0.97
        floor = ring.through_transmission(0.0, a, r1, r2)
        expected = ((a * r2 - r1) / (1 - a * r1 * r2)) ** 2
        assert floor == pytest.approx(expected)

    def test_antiresonance_ceiling(self):
        a, r1, r2 = 0.99, 0.95, 0.97
        ceiling = ring.through_transmission(math.pi, a, r1, r2)
        expected = ((a * r2 + r1) / (1 + a * r1 * r2)) ** 2
        assert ceiling == pytest.approx(expected)

    def test_critical_coupling_gives_zero_floor(self):
        # r1 = a*r2 nulls the through port on resonance.
        a, r2 = 0.995, 0.98
        r1 = a * r2
        assert ring.through_transmission(0.0, a, r1, r2) == pytest.approx(0.0)

    @given(theta=phases, a=losses, r1=couplings, r2=couplings)
    def test_bounded_in_unit_interval(self, theta, a, r1, r2):
        value = ring.through_transmission(theta, a, r1, r2)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(theta=phases, a=losses, r1=couplings, r2=couplings)
    def test_periodicity(self, theta, a, r1, r2):
        v1 = ring.through_transmission(theta, a, r1, r2)
        v2 = ring.through_transmission(theta + 2 * math.pi, a, r1, r2)
        assert v1 == pytest.approx(v2, abs=1e-12)

    @given(theta=phases, a=losses, r1=couplings, r2=couplings)
    def test_even_in_detuning(self, theta, a, r1, r2):
        v1 = ring.through_transmission(theta, a, r1, r2)
        v2 = ring.through_transmission(-theta, a, r1, r2)
        assert v1 == pytest.approx(v2, abs=1e-12)

    def test_rejects_invalid_coefficients(self):
        with pytest.raises(ConfigurationError):
            ring.through_transmission(0.0, 1.5, 0.9, 0.9)
        with pytest.raises(ConfigurationError):
            ring.through_transmission(0.0, 0.9, 0.0, 0.9)

    def test_array_input(self):
        theta = np.linspace(-math.pi, math.pi, 11)
        values = ring.through_transmission(theta, 0.99, 0.95, 0.97)
        assert values.shape == theta.shape
        assert values.argmin() == 5  # resonance at the center sample


class TestDropTransmission:
    def test_peak_formula(self):
        a, r1, r2 = 0.999, 0.97, 0.97
        peak = ring.drop_transmission(0.0, a, r1, r2)
        x = a * r1 * r2
        expected = a * (1 - r1**2) * (1 - r2**2) / (1 - x) ** 2
        assert peak == pytest.approx(expected)

    @given(theta=phases, a=losses, r1=couplings, r2=couplings)
    def test_bounded_and_positive(self, theta, a, r1, r2):
        value = ring.drop_transmission(theta, a, r1, r2)
        assert 0.0 < value <= 1.0 + 1e-12

    @given(a=losses, r1=couplings, r2=couplings, theta=phases)
    def test_maximal_on_resonance(self, a, r1, r2, theta):
        on_res = ring.drop_transmission(0.0, a, r1, r2)
        off_res = ring.drop_transmission(theta, a, r1, r2)
        assert off_res <= on_res + 1e-12

    @given(theta=phases, a=losses, r1=couplings, r2=couplings)
    def test_energy_conservation(self, theta, a, r1, r2):
        # Power out (through + drop) cannot exceed power in.
        t = ring.through_transmission(theta, a, r1, r2)
        d = ring.drop_transmission(theta, a, r1, r2)
        assert t + d <= 1.0 + 1e-9


class TestRingParameters:
    def test_through_and_drop_at_wavelengths(self):
        params = ring.RingParameters(r1=0.95, r2=0.95, a=0.998, fsr_nm=20.0)
        # On resonance.
        assert params.through(1550.0, 1550.0) == pytest.approx(
            params.through_floor
        )
        assert params.drop(1550.0, 1550.0) == pytest.approx(params.drop_peak)
        # Half an FSR away: anti-resonance.
        assert params.through(1560.0, 1550.0) == pytest.approx(
            params.through_ceiling
        )

    def test_fsr_periodicity_in_wavelength(self):
        params = ring.RingParameters(r1=0.95, r2=0.95, a=0.998, fsr_nm=15.0)
        assert params.drop(1550.0 + 15.0, 1550.0) == pytest.approx(
            params.drop_peak
        )

    def test_fwhm_matches_numerical_half_maximum(self):
        params = ring.RingParameters(r1=0.97, r2=0.97, a=0.999, fsr_nm=20.0)
        half = params.drop_peak / 2.0
        # At +/- FWHM/2 detuning, the drop should be at half maximum.
        value = params.drop(1550.0 + params.fwhm_nm / 2.0, 1550.0)
        assert value == pytest.approx(half, rel=5e-3)

    def test_quality_factor_and_finesse(self):
        params = ring.RingParameters(r1=0.97, r2=0.97, a=0.999, fsr_nm=20.0)
        assert params.finesse == pytest.approx(20.0 / params.fwhm_nm)
        assert params.quality_factor(1550.0) == pytest.approx(
            1550.0 / params.fwhm_nm
        )

    def test_with_fsr(self):
        params = ring.RingParameters(r1=0.97, r2=0.97, a=0.999, fsr_nm=20.0)
        scaled = params.with_fsr(10.0)
        assert scaled.fsr_nm == 10.0
        assert scaled.r1 == params.r1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ring.RingParameters(r1=1.2, r2=0.9, a=0.99, fsr_nm=20.0)
        with pytest.raises(ConfigurationError):
            ring.RingParameters(r1=0.9, r2=0.9, a=0.99, fsr_nm=-1.0)


class TestLinewidthHelpers:
    @given(
        fsr=st.floats(min_value=5.0, max_value=50.0),
        fwhm=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_fwhm_roundtrip(self, fsr, fwhm):
        x = ring.loss_coupling_product_for_fwhm(fsr, fwhm)
        assert ring.add_drop_fwhm_nm(fsr, x) == pytest.approx(fwhm, rel=1e-9)

    def test_fwhm_infeasible(self):
        with pytest.raises(DesignInfeasibleError):
            ring.loss_coupling_product_for_fwhm(1.0, 2.0)

    def test_add_drop_fwhm_validates_x(self):
        with pytest.raises(ConfigurationError):
            ring.add_drop_fwhm_nm(20.0, 1.5)


class TestDesignHelpers:
    @given(
        fwhm=st.floats(min_value=0.03, max_value=0.5),
        floor=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_modulator_design_meets_targets(self, fwhm, floor):
        params = ring.design_modulator_ring(
            fsr_nm=20.0, fwhm_nm=fwhm, through_floor=floor, a=0.999
        )
        assert params.fwhm_nm == pytest.approx(fwhm, rel=1e-6)
        assert params.through_floor == pytest.approx(floor, abs=1e-9)

    @given(
        fwhm=st.floats(min_value=0.03, max_value=0.5),
        peak=st.floats(min_value=0.2, max_value=0.98),
    )
    def test_add_drop_design_meets_targets(self, fwhm, peak):
        params = ring.design_add_drop_ring(
            fsr_nm=20.0, fwhm_nm=fwhm, drop_peak=peak
        )
        assert params.fwhm_nm == pytest.approx(fwhm, rel=1e-6)
        assert params.drop_peak == pytest.approx(peak, rel=1e-9)
        assert params.r1 == params.r2

    def test_modulator_design_rejects_bad_floor(self):
        with pytest.raises(ConfigurationError):
            ring.design_modulator_ring(20.0, 0.2, through_floor=1.2)

    def test_add_drop_design_rejects_bad_peak(self):
        with pytest.raises(ConfigurationError):
            ring.design_add_drop_ring(20.0, 0.2, drop_peak=0.0)

"""Tests for literature device presets and calibrated ring profiles."""

import pytest

from repro.photonics import devices


class TestMZIPresets:
    def test_ziebell_matches_paper_quote(self):
        # Section II-B: 40 Gb/s, 4.5 dB IL, 3.2 dB ER.
        assert devices.ZIEBELL_2012.insertion_loss_db == 4.5
        assert devices.ZIEBELL_2012.extinction_ratio_db == 3.2
        assert devices.ZIEBELL_2012.modulation_speed_gbps == 40.0

    def test_xiao_matches_paper_quote(self):
        # Section V-B: IL 6.5 dB, ER 7.5 dB; Fig. 6(c): 60 Gb/s, 0.75 mm.
        assert devices.XIAO_2013.insertion_loss_db == 6.5
        assert devices.XIAO_2013.extinction_ratio_db == 7.5
        assert devices.XIAO_2013.modulation_speed_gbps == 60.0
        assert devices.XIAO_2013.phase_shifter_length_mm == 0.75

    def test_fig6c_lineup_matches_figure_annotations(self):
        # Fig. 6(c) rows: (speed Gb/s, phase-shifter length mm).
        lineup = [
            (d.modulation_speed_gbps, d.phase_shifter_length_mm)
            for d in devices.FIG6C_DEVICES
        ]
        assert lineup == [(50.0, 1.0), (40.0, 1.0), (40.0, 4.0), (60.0, 0.75)]

    def test_assumed_devices_inside_fig6a_ranges(self):
        # Devices with assumed IL/ER must live inside the explored grid
        # (IL in [3, 7.4] dB, ER in [4, 7.6] dB).
        for device in devices.FIG6C_DEVICES:
            assert 3.0 <= device.insertion_loss_db <= 7.4
            assert 4.0 <= device.extinction_ratio_db <= 7.6


class TestRingProfiles:
    def test_coarse_profile_figures_of_merit(self):
        profile = devices.COARSE_RING_PROFILE
        # OFF-state leakage calibrated to 10 % and drop peak to 91 %
        # (these two reproduce Fig. 5's 0.091 total transmission).
        assert profile.modulator.through_floor == pytest.approx(0.10, abs=1e-6)
        assert profile.filter.drop_peak == pytest.approx(0.91, abs=1e-6)
        assert profile.modulation_shift_nm == pytest.approx(0.10)

    def test_dense_profile_narrower_than_coarse(self):
        coarse = devices.COARSE_RING_PROFILE
        dense = devices.DENSE_RING_PROFILE
        assert dense.filter.fwhm_nm < coarse.filter.fwhm_nm
        assert dense.modulator.fwhm_nm < coarse.modulator.fwhm_nm

    def test_profiles_have_physical_quality_factors(self):
        for profile in (devices.COARSE_RING_PROFILE, devices.DENSE_RING_PROFILE):
            for params in (profile.modulator, profile.filter):
                q = params.quality_factor(1550.0)
                assert 1e3 < q < 1e6  # plausible for silicon/GaAs rings

    def test_van_2002_tuning(self):
        assert devices.VAN_2002_OTE.shift_nm(10.0) == pytest.approx(0.1)
        assert devices.VAN_2002_PULSE_WIDTH_S == pytest.approx(26e-12)


class TestPhotodetectorPreset:
    def test_default_detector_ratio(self):
        det = devices.DEFAULT_PHOTODETECTOR
        # Only R/i_n matters for Eq. 8; keep the calibrated ratio pinned.
        ratio = det.responsivity_a_per_w / det.noise_current_a
        assert ratio == pytest.approx(1.0 / 8.43e-6)

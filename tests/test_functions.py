"""Tests for the target function library."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stochastic import functions
from repro.stochastic.functions import bernstein_program


class TestGammaCorrection:
    def test_endpoints(self):
        assert functions.gamma_correction(0.0) == pytest.approx(0.0)
        assert functions.gamma_correction(1.0) == pytest.approx(1.0)

    def test_brightens_midtones_for_encoding_gamma(self):
        # gamma < 1 raises mid-range intensities.
        assert functions.gamma_correction(0.5, gamma=0.45) > 0.5

    def test_identity_gamma(self):
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(functions.gamma_correction(xs, 1.0), xs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            functions.gamma_correction(0.5, gamma=0.0)
        with pytest.raises(ConfigurationError):
            functions.gamma_correction(1.5)


class TestGammaBernstein:
    def test_paper_order_is_six(self):
        poly = functions.gamma_bernstein()
        assert poly.degree == 6

    def test_implementable(self):
        assert functions.gamma_bernstein().is_sc_implementable()

    def test_approximation_quality(self):
        poly = functions.gamma_bernstein(degree=6)
        xs = np.linspace(0.05, 1.0, 64)
        error = np.max(np.abs(poly(xs) - functions.gamma_correction(xs)))
        # Bounded least squares at n=6: ~1 % away from the x->0
        # singularity, serviceable for 8-bit imaging (paper's realm).
        assert error < 0.02


class TestLibrary:
    def test_all_programs_are_implementable(self):
        for name in functions.FUNCTION_LIBRARY:
            assert bernstein_program(name).is_sc_implementable(), name

    def test_paper_f1_program_matches_figure(self):
        poly = bernstein_program("paper_f1")
        np.testing.assert_allclose(
            poly.coefficients, [2 / 8, 5 / 8, 3 / 8, 6 / 8]
        )

    def test_smoothstep_is_exact_at_its_degree(self):
        poly = bernstein_program("smoothstep")
        xs = np.linspace(0, 1, 33)
        np.testing.assert_allclose(poly(xs), functions.smoothstep(xs), atol=1e-9)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            bernstein_program("nope")

    def test_unit_interval_ranges(self):
        xs = np.linspace(0, 1, 257)
        for fn in (functions.sigmoid_like, functions.smoothstep, functions.scaled_sine):
            values = fn(xs)
            assert np.all(values >= -1e-9)
            assert np.all(values <= 1 + 1e-9)

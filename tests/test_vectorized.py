"""Parity suite for the stacked-corner vectorized optics engine.

Every batch path in :mod:`repro.core.vectorized` (and its supporting
pieces in ``transmission``/``link_budget``/``snr``) must agree with the
scalar per-corner chain it replaces: same received powers, same eyes,
same yield decisions, same feasibility masks.  The batched arithmetic
only differs from the scalar one in matrix-product summation order, so
the tolerances here are tight (1e-10 relative) and the boolean
decisions are required to be identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import mrr_first_design
from repro.core.energy import energy_vs_spacing
from repro.core.link_budget import batch_eye_bands, received_power_table
from repro.core.params import paper_section5a_parameters
from repro.core.snr import probe_power_for_eyes_mw, worst_case_eye
from repro.core.transmission import StackedTransmissionModel, TransmissionModel
from repro.core.vectorized import (
    energy_vs_spacing_batch,
    monte_carlo_eye_batch,
    mrr_first_design_batch,
    mrr_first_sizing_batch,
    perturbed_geometry,
    worst_case_eye_batch,
)
from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.photonics.devices import DENSE_RING_PROFILE
from repro.simulation.montecarlo import (
    VariationModel,
    _perturbed_params,
    run_monte_carlo,
    yield_vs_sigma,
)
from repro.simulation.runtime import RuntimeConfig, resolve_vectorized

TIGHT = dict(rtol=1e-10, atol=1e-14)


def _order_params(order: int, spacing_nm: float = 0.165):
    """A sized parameter bundle for parity checks at a given order."""
    return mrr_first_design(order, spacing_nm).params


def _scalar_eyes(params, ring_offsets, filter_offsets):
    return np.asarray(
        [
            worst_case_eye(_perturbed_params(params, float(r), float(f))).opening
            for r, f in zip(ring_offsets, filter_offsets)
        ]
    )


def _offsets(params, rng, count, sigma=0.05):
    shift = params.ring_profile.modulation_shift_nm
    ring = np.clip(
        rng.normal(0.0, sigma, count), -0.8 * shift, 0.8 * shift
    )
    return ring, rng.normal(0.0, sigma, count)


class TestEyeBatchParity:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_matches_scalar_chain_across_orders(self, order, rng):
        params = _order_params(order)
        ring, filt = _offsets(params, rng, 40)
        batch = worst_case_eye_batch(params, ring, filt)
        scalar = _scalar_eyes(params, ring, filt)
        np.testing.assert_allclose(batch, scalar, **TIGHT)
        # Yield decisions must be *identical*, not merely close.
        assert np.array_equal(batch > 0.0, scalar > 0.0)

    def test_single_corner_degenerate(self):
        params = paper_section5a_parameters()
        batch = worst_case_eye_batch(params, [0.01], [-0.02])
        scalar = _scalar_eyes(params, [0.01], [-0.02])
        assert batch.shape == (1,)
        np.testing.assert_allclose(batch, scalar, **TIGHT)

    def test_collapsed_guard_band_clamp(self):
        # A large negative filter offset collapses the guard band; both
        # paths must clamp it at 1e-6 nm (the worst case) identically.
        params = paper_section5a_parameters()
        guard = params.grid.guard_nm
        filt = np.asarray([-guard - 0.05, -guard, -guard + 1e-7, 0.0])
        ring = np.zeros_like(filt)
        batch = worst_case_eye_batch(params, ring, filt)
        scalar = _scalar_eyes(params, ring, filt)
        np.testing.assert_allclose(batch, scalar, **TIGHT)
        assert np.array_equal(batch > 0.0, scalar > 0.0)

    def test_closed_eye_corners(self, rng):
        # A cramped dense grid closes the worst-case eye; the batch must
        # report the same negative openings as the scalar chain.
        params = mrr_first_design(
            2, 0.05, ring_profile=DENSE_RING_PROFILE, probe_power_mw=1.0
        ).params
        ring, filt = _offsets(params, rng, 12, sigma=0.02)
        batch = worst_case_eye_batch(params, ring, filt)
        scalar = _scalar_eyes(params, ring, filt)
        np.testing.assert_allclose(batch, scalar, **TIGHT)
        assert np.all(batch <= 0.0)

    def test_offset_broadcasting_and_validation(self):
        params = paper_section5a_parameters()
        one = worst_case_eye_batch(params, 0.01, [0.0, 0.01, 0.02])
        assert one.shape == (3,)
        with pytest.raises(ConfigurationError):
            worst_case_eye_batch(params, [0.0, 0.1], [0.0, 0.1, 0.2])
        with pytest.raises(ConfigurationError):
            worst_case_eye_batch("params", [0.0], [0.0])


class TestStackedReceivedPower:
    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_tables_match_per_corner_models(self, order, rng):
        params = _order_params(order)
        ring, filt = _offsets(params, rng, 6)
        wavelengths, resonances = perturbed_geometry(params, ring, filt)
        stacked = StackedTransmissionModel(
            params.ring_profile,
            params.order,
            wavelengths,
            resonances,
            probe_power_mw=params.probe_power_mw,
        )
        tables = stacked.received_power_tables_mw()
        assert tables.shape == (
            ring.size,
            1 << params.channel_count,
            params.channel_count,
        )
        for s in range(ring.size):
            corner = _perturbed_params(params, float(ring[s]), float(filt[s]))
            scalar_table = TransmissionModel(corner).received_power_table_mw()
            np.testing.assert_allclose(tables[s], scalar_table, **TIGHT)

    def test_eye_bands_match_link_budget(self, rng):
        params = paper_section5a_parameters()
        ring, filt = _offsets(params, rng, 5)
        wavelengths, resonances = perturbed_geometry(params, ring, filt)
        stacked = StackedTransmissionModel(
            params.ring_profile, params.order, wavelengths, resonances
        )
        one_min, zero_max = stacked.eye_bands()
        for s in range(ring.size):
            corner = _perturbed_params(params, float(ring[s]), float(filt[s]))
            budget = received_power_table(corner.with_probe_power(1.0))
            assert one_min[s] == pytest.approx(budget.one_band_mw[0], rel=1e-10)
            assert zero_max[s] == pytest.approx(
                budget.zero_band_mw[1], rel=1e-10
            )

    def test_batch_eye_bands_validation(self):
        with pytest.raises(ConfigurationError):
            batch_eye_bands(np.zeros((4, 8)))
        with pytest.raises(ConfigurationError):
            batch_eye_bands(np.zeros((2, 6, 3)))  # P not a power of two

    def test_stacked_model_validation(self):
        profile = paper_section5a_parameters().ring_profile
        good = np.full((2, 3), 1550.0)
        with pytest.raises(ConfigurationError):
            StackedTransmissionModel(profile, 2, good[:, :2], good[:, :2])
        with pytest.raises(ConfigurationError):
            StackedTransmissionModel(profile, 2, good, good[:1])
        with pytest.raises(ConfigurationError):
            StackedTransmissionModel(
                profile, 2, good, good, probe_power_mw=[1.0, -1.0]
            )


class TestMonteCarloVectorized:
    def test_vectorized_matches_scalar_run(self):
        params = paper_section5a_parameters()
        kwargs = dict(
            variation=VariationModel(0.04, 0.04), samples=150, workers=0
        )
        scalar = run_monte_carlo(
            params, rng=np.random.default_rng(11), vectorized=False, **kwargs
        )
        batch = run_monte_carlo(
            params, rng=np.random.default_rng(11), vectorized=True, **kwargs
        )
        assert batch.yield_fraction == scalar.yield_fraction
        np.testing.assert_allclose(
            batch.eye_openings_mw, scalar.eye_openings_mw, **TIGHT
        )
        assert batch.mean_eye_mw == pytest.approx(scalar.mean_eye_mw, rel=1e-10)
        assert batch.worst_eye_mw == pytest.approx(
            scalar.worst_eye_mw, rel=1e-10
        )

    def test_vectorized_worker_invariance(self):
        params = paper_section5a_parameters()
        serial = run_monte_carlo(
            params,
            samples=24,
            rng=np.random.default_rng(5),
            workers=0,
            vectorized=True,
        )
        sharded = run_monte_carlo(
            params,
            samples=24,
            rng=np.random.default_rng(5),
            workers=2,
            vectorized=True,
        )
        np.testing.assert_array_equal(
            serial.eye_openings_mw, sharded.eye_openings_mw
        )

    def test_monte_carlo_eye_batch_sharding_is_exact(self, rng):
        params = paper_section5a_parameters()
        ring, filt = _offsets(params, rng, 23)
        one = monte_carlo_eye_batch(params, ring, filt, workers=0)
        threaded = monte_carlo_eye_batch(
            params, ring, filt, workers=3, backend="thread"
        )
        np.testing.assert_array_equal(one, threaded)

    def test_runtime_config_carries_the_knob(self):
        params = paper_section5a_parameters()
        explicit = run_monte_carlo(
            params, samples=20, rng=np.random.default_rng(9), vectorized=True
        )
        via_runtime = run_monte_carlo(
            params,
            samples=20,
            rng=np.random.default_rng(9),
            runtime=RuntimeConfig(workers=0, vectorized=True),
        )
        np.testing.assert_array_equal(
            explicit.eye_openings_mw, via_runtime.eye_openings_mw
        )

    def test_session_monte_carlo_uses_runtime_knob(self):
        import repro

        circuit = repro.OpticalStochasticCircuit(
            paper_section5a_parameters(),
            repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        session = repro.Evaluator(
            circuit,
            runtime=RuntimeConfig(workers=0, vectorized=True),
        )
        via_session = session.monte_carlo(
            samples=16, rng=np.random.default_rng(3)
        )
        direct = run_monte_carlo(
            circuit.params,
            samples=16,
            rng=np.random.default_rng(3),
            workers=0,
            vectorized=True,
        )
        np.testing.assert_array_equal(
            via_session.eye_openings_mw, direct.eye_openings_mw
        )

    def test_runtime_config_validates_vectorized(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(vectorized="yes")
        assert RuntimeConfig(vectorized=True).vectorized is True
        assert resolve_vectorized(None, None) is False
        assert resolve_vectorized(RuntimeConfig(vectorized=True), None) is True
        assert resolve_vectorized(RuntimeConfig(vectorized=True), False) is False


class TestYieldVsSigma:
    def test_vectorized_matches_scalar_curve(self):
        params = paper_section5a_parameters()
        sigmas = [0.01, 0.03, 0.06]
        scalar = yield_vs_sigma(
            params,
            sigmas,
            samples=40,
            rng=np.random.default_rng(21),
            vectorized=False,
        )
        batch = yield_vs_sigma(
            params,
            sigmas,
            samples=40,
            rng=np.random.default_rng(21),
            vectorized=True,
        )
        np.testing.assert_array_equal(
            scalar["yield_fraction"], batch["yield_fraction"]
        )
        np.testing.assert_allclose(
            scalar["mean_eye_mw"], batch["mean_eye_mw"], **TIGHT
        )

    def test_seed_stable_across_worker_counts(self):
        # Offsets are drawn up front per sigma block, so the curve is a
        # pure function of the seed whatever pool evaluates it.
        params = paper_section5a_parameters()
        serial = yield_vs_sigma(
            params, [0.02, 0.05], samples=16, rng=np.random.default_rng(8),
            workers=0,
        )
        pooled = yield_vs_sigma(
            params, [0.02, 0.05], samples=16, rng=np.random.default_rng(8),
            runtime=RuntimeConfig(workers=2, backend="thread"),
        )
        np.testing.assert_array_equal(
            serial["yield_fraction"], pooled["yield_fraction"]
        )
        np.testing.assert_array_equal(
            serial["mean_eye_mw"], pooled["mean_eye_mw"]
        )

    def test_validation(self):
        params = paper_section5a_parameters()
        with pytest.raises(ConfigurationError):
            yield_vs_sigma(params, [])
        with pytest.raises(ConfigurationError):
            yield_vs_sigma(params, [0.01], samples=0)
        with pytest.raises(ConfigurationError):
            yield_vs_sigma("params", [0.01])


class TestVectorizedSizing:
    def test_design_batch_matches_scalar_designs(self):
        spacings = [0.13, 0.165, 0.22]
        batch = mrr_first_design_batch(2, spacings)
        for design, spacing in zip(batch, spacings):
            scalar = mrr_first_design(2, spacing)
            assert design.method == scalar.method
            assert design.pump_power_mw == pytest.approx(
                scalar.pump_power_mw, rel=1e-12
            )
            assert design.required_er_db == pytest.approx(
                scalar.required_er_db, rel=1e-12
            )
            assert design.probe_power_mw == pytest.approx(
                scalar.probe_power_mw, rel=1e-10
            )
            assert design.params.grid == scalar.params.grid

    def test_design_batch_rejects_infeasible(self):
        with pytest.raises(DesignInfeasibleError):
            mrr_first_design_batch(2, [0.165, 0.01])

    def test_design_batch_mixed_default_profiles(self):
        # Spacings straddling the dense/coarse threshold pick the same
        # per-spacing default profile as the scalar designer.
        batch = mrr_first_design_batch(2, [0.165, 1.0], probe_power_mw=1.0)
        for design, spacing in zip(batch, [0.165, 1.0]):
            scalar = mrr_first_design(2, spacing, probe_power_mw=1.0)
            assert design.params.ring_profile == scalar.params.ring_profile
            assert design.pump_power_mw == pytest.approx(
                scalar.pump_power_mw, rel=1e-12
            )

    def test_sizing_batch_feasibility_masks(self):
        sizing = mrr_first_sizing_batch(
            2, np.asarray([0.01, 0.165, 25.0]), ring_profile=DENSE_RING_PROFILE
        )
        assert sizing["fits_fsr"].tolist() == [True, True, False]
        assert sizing["eye_open"].tolist() == [False, True, False]
        assert sizing["feasible"].tolist() == [False, True, False]
        assert np.isinf(sizing["probe_power_mw"][0])
        assert np.isnan(sizing["eye_opening"][2])

    def test_size_probe_false_skips_eye_but_keeps_pump_er(self):
        spacings = np.asarray([0.165, 25.0])
        lean = mrr_first_sizing_batch(
            2, spacings, ring_profile=DENSE_RING_PROFILE, size_probe=False
        )
        assert np.all(np.isnan(lean["eye_opening"]))
        assert np.all(np.isinf(lean["probe_power_mw"]))
        assert not lean["feasible"].any()
        assert lean["fits_fsr"].tolist() == [True, False]
        full = mrr_first_sizing_batch(
            2, spacings, ring_profile=DENSE_RING_PROFILE
        )
        np.testing.assert_array_equal(
            lean["pump_power_mw"], full["pump_power_mw"]
        )
        np.testing.assert_array_equal(lean["er_db"], full["er_db"])

    def test_sizing_batch_validation(self):
        with pytest.raises(ConfigurationError):
            mrr_first_sizing_batch(0, [0.165])
        with pytest.raises(ConfigurationError):
            mrr_first_sizing_batch(2, [])
        with pytest.raises(ConfigurationError):
            mrr_first_sizing_batch(2, [-0.1])
        with pytest.raises(ConfigurationError):
            mrr_first_sizing_batch(2, [0.1, 0.2], guard_nm=[0.1, 0.1, 0.1])

    def test_probe_power_for_eyes(self):
        params = paper_section5a_parameters()
        eye = worst_case_eye(params).opening
        from repro.core.snr import minimum_probe_power_mw

        batch = probe_power_for_eyes_mw(
            [eye, -0.1, 0.0], params.detector, target_ber=1e-6
        )
        assert batch[0] == pytest.approx(
            minimum_probe_power_mw(params, target_ber=1e-6), rel=1e-12
        )
        assert np.isinf(batch[1]) and np.isinf(batch[2])


class TestEnergySweepParity:
    def _assert_sweeps_equal(self, scalar, batch):
        np.testing.assert_array_equal(scalar["spacing_nm"], batch["spacing_nm"])
        for key in ("pump_pj", "probe_pj", "total_pj"):
            s, b = scalar[key], batch[key]
            np.testing.assert_array_equal(np.isnan(s), np.isnan(b))
            np.testing.assert_array_equal(np.isinf(s), np.isinf(b))
            finite = np.isfinite(s)
            np.testing.assert_allclose(s[finite], b[finite], **TIGHT)

    @settings(max_examples=12, deadline=None)
    @given(
        order=st.integers(min_value=2, max_value=6),
        spacings=st.lists(
            st.floats(min_value=0.02, max_value=8.0),
            min_size=1,
            max_size=6,
        ),
    )
    def test_property_matches_scalar_point_for_point(self, order, spacings):
        scalar = energy_vs_spacing(order, spacings, vectorized=False)
        batch = energy_vs_spacing(order, spacings, vectorized=True)
        self._assert_sweeps_equal(scalar, batch)

    def test_inf_rows_match(self):
        # Small spacings close the eye (inf probe energy, nan total);
        # huge spacings overflow the filter FSR.  Both conventions must
        # match the scalar sweep exactly.
        spacings = [0.02, 0.05, 0.165, 0.3, 15.0]
        scalar = energy_vs_spacing(2, spacings, vectorized=False)
        batch = energy_vs_spacing_batch(2, spacings)
        self._assert_sweeps_equal(scalar, batch)
        assert np.isinf(batch["probe_pj"][0])
        assert np.isnan(batch["total_pj"][0])

    def test_custom_designer_keeps_scalar_loop(self):
        calls = []

        def designer(order, spacing_nm, ring_profile, target_ber):
            calls.append(spacing_nm)
            return mrr_first_design(
                order, spacing_nm, ring_profile=ring_profile,
                target_ber=target_ber,
            )

        sweep = energy_vs_spacing(2, [0.15, 0.2], designer=designer)
        assert calls == [0.15, 0.2]
        assert np.all(np.isfinite(sweep["total_pj"]))
        with pytest.raises(ConfigurationError):
            energy_vs_spacing(
                2, [0.15], designer=designer, vectorized=True
            )

    def test_default_is_vectorized_and_agrees(self):
        spacings = np.round(np.linspace(0.11, 0.3, 10), 4)
        default = energy_vs_spacing(4, spacings)
        batch = energy_vs_spacing_batch(4, spacings)
        for key in ("pump_pj", "probe_pj", "total_pj"):
            np.testing.assert_array_equal(default[key], batch[key])


class TestSensitivityBatchEye:
    def test_structure_preserved(self):
        from repro.exploration.sensitivity import (
            headline_energy_sensitivities,
        )

        sens = headline_energy_sensitivities()
        assert sens["laser_efficiency"] == pytest.approx(-1.0, abs=0.05)
        assert sens["ote_nm_per_mw"] < 0.0
        assert sens["insertion_loss_db"] > 0.0
        assert 0.0 < sens["pulse_width_s"] < 1.0

    def test_matches_scalar_finite_differences(self):
        # The batched probes must reproduce the scalar closure-based
        # central differences (same formulas, stacked evaluation).
        from repro.exploration.sensitivity import (
            _headline_energy_pj,
            headline_energy_sensitivities,
            relative_sensitivity,
        )

        names = ("ote_nm_per_mw", "laser_efficiency")
        batch = headline_energy_sensitivities(parameters=names)
        nominals = {
            "ote_nm_per_mw": 0.01,
            "insertion_loss_db": 4.5,
            "guard_nm": 0.1,
            "laser_efficiency": 0.2,
            "pulse_width_s": 26e-12,
        }
        for name in names:

            def metric(value, _name=name):
                kwargs = dict(nominals)
                kwargs[_name] = value
                return _headline_energy_pj(2, 0.165, **kwargs)

            scalar = relative_sensitivity(metric, nominals[name])
            assert batch[name] == pytest.approx(scalar, rel=1e-6)

"""Tests for the extension experiments (yield/controller/sensitivity/parallel)."""

import numpy as np
import pytest

from repro.experiments import list_experiments, run_experiment


class TestRegistryIncludesExtras:
    def test_extras_registered(self):
        names = set(list_experiments())
        assert {"yield", "controller", "sensitivity", "parallel"} <= names


class TestYieldStudy:
    def test_eye_degrades_with_sigma(self):
        result = run_experiment("yield")
        eyes = [r["mean_eye_mw"] for r in result.rows]
        assert eyes[0] > eyes[-1]
        for row in result.rows:
            assert 0.0 <= row["yield_fraction"] <= 1.0


class TestControllerStudy:
    def test_all_drifts_converge(self):
        result = run_experiment("controller")
        assert all(r["converged"] for r in result.rows)
        assert all(abs(r["final_residual_nm"]) < 1e-3 for r in result.rows)

    def test_larger_drift_takes_longer(self):
        result = run_experiment("controller")
        by_drift = {
            abs(r["initial_drift_nm"]): r["settling_iterations"]
            for r in result.rows
        }
        assert by_drift[0.08] >= by_drift[0.02]


class TestSensitivityStudy:
    def test_efficiency_dominates_and_is_inverse(self):
        result = run_experiment("sensitivity")
        table = {r["parameter"]: r["relative_sensitivity"] for r in result.rows}
        assert table["laser_efficiency"] == pytest.approx(-1.0, abs=0.02)
        # Rows sorted by magnitude, efficiency first.
        assert result.rows[0]["parameter"] == "laser_efficiency"


class TestParallelStudy:
    def test_density_constant_and_throughput_linear(self):
        result = run_experiment("parallel")
        densities = [r["power_density_mw_mm2"] for r in result.rows]
        np.testing.assert_allclose(densities, densities[0], rtol=1e-9)
        throughput = [r["throughput_gbps"] for r in result.rows]
        instances = [r["instances"] for r in result.rows]
        np.testing.assert_allclose(
            np.asarray(throughput) / np.asarray(instances),
            throughput[0] / instances[0],
            rtol=1e-9,
        )

    def test_wall_power_matches_headline_energy(self):
        result = run_experiment("parallel")
        single = [r for r in result.rows if r["instances"] == 1][0]
        # 20.1 pJ/bit x 1 Gb/s = 20.1 mW wall power.
        assert single["wall_power_mw"] == pytest.approx(20.1, abs=0.5)

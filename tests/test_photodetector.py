"""Tests for the photodetector models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.photonics import AvalanchePhotodetector, Photodetector


@pytest.fixture
def detector() -> Photodetector:
    return Photodetector(responsivity_a_per_w=1.0, noise_current_a=10e-6)


class TestPhotocurrent:
    def test_responsivity_scaling(self, detector):
        # 1 mW at 1 A/W -> 1 mA.
        assert detector.photocurrent_a(1.0) == pytest.approx(1e-3)

    def test_array(self, detector):
        out = detector.photocurrent_a(np.array([0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 2e-3])

    def test_rejects_negative_power(self, detector):
        with pytest.raises(ConfigurationError):
            detector.photocurrent_a(-1.0)


class TestSNR:
    def test_eq8_form(self, detector):
        # SNR = (I1 - I0) / i_n = R * dP / i_n.
        snr = detector.snr(0.48, 0.095)
        assert snr == pytest.approx(1.0 * (0.48 - 0.095) * 1e-3 / 10e-6)

    def test_closed_eye_rejected(self, detector):
        with pytest.raises(ConfigurationError):
            detector.snr(0.1, 0.1)
        with pytest.raises(ConfigurationError):
            detector.snr(0.1, 0.2)

    @given(
        low=st.floats(min_value=0.0, max_value=0.4),
        swing=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_snr_depends_only_on_swing(self, low, swing):
        det = Photodetector(responsivity_a_per_w=0.8, noise_current_a=5e-6)
        snr = det.snr(low + swing, low)
        assert snr == pytest.approx(0.8 * swing * 1e-3 / 5e-6, rel=1e-9)


class TestSamplingAndDecision:
    def test_noisy_samples_have_configured_std(self, detector, rng):
        samples = detector.sample(np.full(20000, 0.2), rng)
        assert np.std(samples) == pytest.approx(10e-6, rel=0.05)
        assert np.mean(samples) == pytest.approx(0.2e-3, rel=0.02)

    def test_decision_threshold(self, detector):
        threshold = detector.midpoint_threshold_a(0.48, 0.095)
        assert threshold == pytest.approx(0.5 * (0.48 + 0.095) * 1e-3)
        assert detector.decide(0.48e-3, threshold) == 1
        assert detector.decide(0.095e-3, threshold) == 0

    def test_decide_array(self, detector):
        currents = np.array([0.0, 1.0e-3])
        bits = detector.decide(currents, 0.5e-3)
        np.testing.assert_array_equal(bits, [0, 1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Photodetector(responsivity_a_per_w=0.0, noise_current_a=1e-6)
        with pytest.raises(ConfigurationError):
            Photodetector(responsivity_a_per_w=1.0, noise_current_a=0.0)


class TestAvalanche:
    def test_gain_multiplies_current(self):
        apd = AvalanchePhotodetector(
            responsivity_a_per_w=1.0, noise_current_a=10e-6, gain=10.0
        )
        assert apd.photocurrent_a(1.0) == pytest.approx(10e-3)

    def test_excess_noise_factor(self):
        apd = AvalanchePhotodetector(
            responsivity_a_per_w=1.0,
            noise_current_a=10e-6,
            gain=10.0,
            ionization_ratio=0.1,
        )
        expected = 0.1 * 10 + 0.9 * (2 - 0.1)
        assert apd.excess_noise_factor == pytest.approx(expected)

    def test_snr_improves_over_pin_at_moderate_gain(self):
        pin = Photodetector(responsivity_a_per_w=1.0, noise_current_a=10e-6)
        apd = AvalanchePhotodetector(
            responsivity_a_per_w=1.0,
            noise_current_a=10e-6,
            gain=10.0,
            ionization_ratio=0.1,
        )
        assert apd.snr(0.5, 0.1) > pin.snr(0.5, 0.1)

    def test_gain_validation(self):
        with pytest.raises(ConfigurationError):
            AvalanchePhotodetector(
                responsivity_a_per_w=1.0, noise_current_a=1e-6, gain=0.5
            )
        with pytest.raises(ConfigurationError):
            AvalanchePhotodetector(
                responsivity_a_per_w=1.0,
                noise_current_a=1e-6,
                gain=5.0,
                ionization_ratio=1.5,
            )

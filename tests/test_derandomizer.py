"""Tests for de-randomizers and the saturating counter."""

import pytest

from repro.errors import ConfigurationError
from repro.stochastic import Bitstream, Derandomizer, SaturatingCounter


class TestDerandomizer:
    def test_count_and_probability(self):
        stream = Bitstream([0, 1, 1, 0, 1, 0, 0, 0])
        der = Derandomizer()
        assert der.count(stream) == 3
        assert der.probability(stream) == pytest.approx(3 / 8)

    def test_accepts_iterables(self):
        der = Derandomizer()
        assert der.count([1, 0, 1]) == 2
        assert der.probability([1, 0, 1, 0]) == pytest.approx(0.5)

    def test_quantized_output(self):
        stream = Bitstream([1] * 3 + [0] * 5)  # 0.375
        der = Derandomizer(resolution_bits=2)  # levels of 0.25
        assert der.probability(stream) == pytest.approx(0.5)  # rounds up
        der8 = Derandomizer(resolution_bits=3)
        assert der8.probability(stream) == pytest.approx(0.375)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Derandomizer(resolution_bits=-1)


class TestSaturatingCounter:
    def test_counts_up_and_down(self):
        counter = SaturatingCounter(width=4, initial=8)
        counter.update(1)
        assert counter.value == 9
        counter.update(0)
        assert counter.value == 8

    def test_saturates_at_bounds(self):
        counter = SaturatingCounter(width=2, initial=3)
        counter.update(1)
        assert counter.value == 3  # stays at max
        counter.reset(0)
        counter.update(0)
        assert counter.value == 0  # stays at min

    def test_normalized(self):
        counter = SaturatingCounter(width=4, initial=15)
        assert counter.normalized == pytest.approx(1.0)

    def test_update_many_tracks_density(self):
        counter = SaturatingCounter(width=8, initial=128)
        counter.update_many(Bitstream([1] * 64))
        assert counter.value == 192

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SaturatingCounter(width=0)
        with pytest.raises(ConfigurationError):
            SaturatingCounter(width=4, initial=99)
        counter = SaturatingCounter(width=4)
        with pytest.raises(ConfigurationError):
            counter.update(2)
        with pytest.raises(ConfigurationError):
            counter.reset(-1)

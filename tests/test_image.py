"""Tests for the image-processing workload support."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stochastic import image
from repro.stochastic.functions import gamma_correction


class TestCharts:
    def test_radial_gradient_range_and_center(self):
        chart = image.radial_gradient(33)
        assert chart.shape == (33, 33)
        assert chart.min() >= 0.0 and chart.max() <= 1.0
        assert chart[16, 16] == pytest.approx(1.0)
        assert chart[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_linear_ramp(self):
        ramp = image.linear_ramp(16)
        np.testing.assert_allclose(ramp[0], ramp[-1])
        assert ramp[0, 0] == 0.0
        assert ramp[0, -1] == 1.0

    def test_checkerboard(self):
        board = image.checkerboard(16, tiles=4)
        assert set(np.unique(board)) == {0.25, 0.75}
        assert board[0, 0] != board[0, 4]

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            image.radial_gradient(1)
        with pytest.raises(ConfigurationError):
            image.checkerboard(16, tiles=0)


class TestMetrics:
    def test_psnr_infinite_for_identical(self):
        chart = image.linear_ramp(8)
        assert image.psnr_db(chart, chart) == float("inf")

    def test_psnr_known_value(self):
        ref = np.zeros((4, 4))
        noisy = np.full((4, 4), 0.1)
        assert image.psnr_db(ref, noisy) == pytest.approx(20.0)

    def test_mae(self):
        ref = np.zeros((2, 2))
        other = np.array([[0.1, 0.3], [0.0, 0.0]])
        assert image.mean_absolute_error_image(ref, other) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            image.psnr_db(np.zeros((2, 2)), np.zeros((3, 3)))


class TestQuantizeAndKernel:
    def test_quantize_levels(self):
        values = image.quantize_levels(np.array([[0.0, 0.49], [0.51, 1.0]]), 2)
        np.testing.assert_allclose(values, [[0.0, 0.0], [1.0, 1.0]])

    def test_quantize_validation(self):
        with pytest.raises(ConfigurationError):
            image.quantize_levels(np.array([[1.5]]), 4)
        with pytest.raises(ConfigurationError):
            image.quantize_levels(np.array([[0.5]]), 1)

    def test_kernel_batches_levels(self):
        calls = []

        def kernel(x):
            calls.append(x)
            return gamma_correction(x)

        chart = image.linear_ramp(32)
        result = image.apply_pixel_kernel(chart, kernel, levels=8)
        assert result.shape == chart.shape
        # Only the unique quantized levels get evaluated, not 1024 pixels.
        assert len(calls) <= 8

    def test_kernel_exact_levels_none(self):
        chart = image.checkerboard(8)
        result = image.apply_pixel_kernel(chart, lambda x: 1.0 - x, levels=None)
        np.testing.assert_allclose(result, 1.0 - chart)

    def test_kernel_validation(self):
        with pytest.raises(ConfigurationError):
            image.apply_pixel_kernel(np.zeros(4), lambda x: x)
        with pytest.raises(ConfigurationError):
            image.apply_pixel_kernel(np.full((2, 2), 2.0), lambda x: x)
        with pytest.raises(ConfigurationError):
            image.apply_pixel_kernel(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            image.apply_pixel_kernel(
                np.zeros((2, 2)), lambda x: x, batch_kernel=lambda v: v
            )

    def test_batch_kernel_maps_all_levels_at_once(self):
        chart = image.linear_ramp(16)
        calls = []

        def batch_kernel(values):
            calls.append(values)
            return 1.0 - values

        result = image.apply_pixel_kernel(
            chart, levels=8, batch_kernel=batch_kernel
        )
        assert len(calls) == 1  # one vectorized pass over unique levels
        np.testing.assert_allclose(
            result, 1.0 - image.quantize_levels(chart, 8)
        )

    def test_batch_kernel_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            image.apply_pixel_kernel(
                image.linear_ramp(8),
                levels=4,
                batch_kernel=lambda values: values[:-1],
            )

    def test_batch_and_scalar_kernels_agree(self):
        chart = image.radial_gradient(16)
        scalar = image.apply_pixel_kernel(chart, gamma_correction, levels=8)
        batched = image.apply_pixel_kernel(
            chart, levels=8, batch_kernel=lambda v: gamma_correction(v)
        )
        np.testing.assert_allclose(scalar, batched)


class TestCircuitKernel:
    def test_one_pass_circuit_mapping(self):
        from repro.core.circuit import OpticalStochasticCircuit
        from repro.core.params import paper_section5a_parameters
        from repro.session import EvalSpec, Evaluator
        from repro.simulation.runtime import run_batch
        from repro.stochastic.bernstein import BernsteinPolynomial

        circuit = OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        chart = image.linear_ramp(16)
        session = Evaluator(circuit, EvalSpec(length=256))
        result = session.apply_kernel(
            chart, levels=8, rng=np.random.default_rng(4)
        )
        assert result.shape == chart.shape
        assert np.all((result >= 0.0) & (result <= 1.0))
        # Bit-exact with mapping the unique levels through the runtime
        # (the kernel evaluates every unique gray level in one pass).
        unique = np.unique(image.quantize_levels(chart, 8))
        expected = run_batch(
            circuit, unique, length=256, rng=np.random.default_rng(4)
        ).values
        lut = dict(zip(unique, expected))
        reference = np.vectorize(lut.get)(image.quantize_levels(chart, 8))
        np.testing.assert_array_equal(result, reference)

    def test_circuit_kernel_runtime_knobs_do_not_change_pixels(self):
        from repro.core.circuit import OpticalStochasticCircuit
        from repro.core.params import paper_section5a_parameters
        from repro.session import EvalSpec, Evaluator
        from repro.simulation.runtime import RuntimeConfig
        from repro.stochastic.bernstein import BernsteinPolynomial

        circuit = OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        chart = image.radial_gradient(12)
        spec = EvalSpec(length=128)
        plain = Evaluator(circuit, spec).apply_kernel(
            chart, levels=6, rng=np.random.default_rng(9)
        )
        sharded = Evaluator(
            circuit, spec, RuntimeConfig(workers=2)
        ).apply_kernel(chart, levels=6, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(plain, sharded)

"""Tests for elementary stochastic logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import (
    Bitstream,
    scaled_add,
    stochastic_and,
    stochastic_mux,
    stochastic_not,
    stochastic_or,
    stochastic_xor,
)
from repro.stochastic.elements import adder_select

probabilities = st.floats(min_value=0.0, max_value=1.0)


def _bernoulli_pair(pa, pb, n=50_000, seed=7):
    rng = np.random.default_rng(seed)
    return (
        Bitstream.from_probability(pa, n, rng),
        Bitstream.from_probability(pb, n, rng),
    )


class TestGateSemantics:
    @given(pa=probabilities, pb=probabilities)
    @settings(max_examples=20, deadline=None)
    def test_and_multiplies(self, pa, pb):
        a, b = _bernoulli_pair(pa, pb)
        assert stochastic_and(a, b).probability == pytest.approx(
            pa * pb, abs=0.02
        )

    @given(pa=probabilities, pb=probabilities)
    @settings(max_examples=20, deadline=None)
    def test_or_semantics(self, pa, pb):
        a, b = _bernoulli_pair(pa, pb)
        expected = pa + pb - pa * pb
        assert stochastic_or(a, b).probability == pytest.approx(
            expected, abs=0.02
        )

    @given(pa=probabilities, pb=probabilities)
    @settings(max_examples=20, deadline=None)
    def test_xor_semantics(self, pa, pb):
        a, b = _bernoulli_pair(pa, pb)
        expected = pa + pb - 2 * pa * pb
        assert stochastic_xor(a, b).probability == pytest.approx(
            expected, abs=0.02
        )

    @given(p=probabilities)
    @settings(max_examples=20, deadline=None)
    def test_not_complements_exactly(self, p):
        stream = Bitstream.exact(p, 256)
        assert stochastic_not(stream).probability == pytest.approx(
            1.0 - stream.probability
        )


class TestMux:
    def test_selects_per_bit(self):
        select = Bitstream([0, 1, 0, 1])
        a = Bitstream([1, 1, 1, 1])
        b = Bitstream([0, 0, 0, 0])
        assert stochastic_mux(select, a, b).bits.tolist() == [1, 0, 1, 0]

    @given(ps=probabilities, pa=probabilities, pb=probabilities)
    @settings(max_examples=20, deadline=None)
    def test_scaled_addition_semantics(self, ps, pa, pb):
        rng = np.random.default_rng(11)
        n = 50_000
        select = Bitstream.from_probability(ps, n, rng)
        a = Bitstream.from_probability(pa, n, rng)
        b = Bitstream.from_probability(pb, n, rng)
        expected = (1 - ps) * pa + ps * pb
        assert stochastic_mux(select, a, b).probability == pytest.approx(
            expected, abs=0.02
        )

    def test_scaled_add_is_half_sum(self):
        rng = np.random.default_rng(3)
        n = 50_000
        a = Bitstream.from_probability(0.8, n, rng)
        b = Bitstream.from_probability(0.2, n, rng)
        select = Bitstream.from_probability(0.5, n, rng)
        assert scaled_add(a, b, select).probability == pytest.approx(
            0.5, abs=0.02
        )

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            stochastic_mux(Bitstream([0, 1]), Bitstream([1]), Bitstream([0, 0]))


class TestAdderSelect:
    def test_counts_ones_per_clock(self):
        # Fig. 1(b): x1, x2, x3 streams produce select 1,2,0,2,3,1,2,1.
        x1 = Bitstream([0, 0, 0, 1, 1, 0, 1, 1])
        x2 = Bitstream([0, 1, 1, 1, 0, 0, 1, 0])
        x3 = Bitstream([1, 1, 0, 1, 1, 0, 0, 0])  # wait, recomputed below
        select = adder_select([x1, x2, x3])
        expected = x1.bits.astype(int) + x2.bits.astype(int) + x3.bits.astype(int)
        np.testing.assert_array_equal(select, expected)

    def test_range(self):
        rng = np.random.default_rng(5)
        streams = [Bitstream.from_probability(0.5, 100, rng) for _ in range(4)]
        select = adder_select(streams)
        assert select.min() >= 0
        assert select.max() <= 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            adder_select([])

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            adder_select([Bitstream([0, 1]), Bitstream([1])])

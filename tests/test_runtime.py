"""Tests for the scaling runtime: sharding, chunking, caching — and the
scalar/batch parity regressions fixed alongside it.

The runtime's contract mirrors the engine's: every scaling strategy is a
pure wall-clock/memory optimization.  Sharded evaluation must reassemble
bit-for-bit what the serial pass produces under the same seed schedule;
chunked streaming must accumulate exactly the one-shot statistics; a
cache hit must return the stored result without recomputing.
"""

import threading

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.exploration.sweep import grid_sweep
from repro.exploration.tradeoffs import throughput_accuracy_frontier
from repro.simulation.engine import (
    SeedSchedule,
    derive_seed_schedule,
    simulate_batch,
)
from repro.simulation.montecarlo import run_monte_carlo
from repro.simulation.runtime import (
    ChunkedEvaluation,
    EvaluationCache,
    RuntimeConfig,
    # The public cached_simulate_batch is a deprecated wrapper over this
    # impl (covered by tests/test_session.py and test_public_api.py);
    # the cache-behavior tests below target the runtime itself.
    _cached_simulate_batch as cached_simulate_batch,
    default_worker_count,
    parallel_map,
    run_batch,
    simulate_batch_sharded,
    simulate_chunked,
)
from repro.stochastic.bernstein import BernsteinPolynomial
from repro.stochastic.bitstream import exact_bit_matrix, exact_bit_window
from repro.stochastic.lfsr import lfsr_uniform_windows
from repro.stochastic.sng import SNG_KINDS, SobolLikeSNG, chaotic_orbit

ALL_KINDS = list(SNG_KINDS)


@pytest.fixture(scope="module")
def circuit():
    return OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


def _assert_batches_identical(a, b):
    assert np.array_equal(a.xs, b.xs)
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.expected, b.expected)
    assert a.stream_length == b.stream_length
    assert np.array_equal(a.received_power_mw, b.received_power_mw)
    assert np.array_equal(a.output_bits, b.output_bits)
    assert np.array_equal(a.ideal_bits, b.ideal_bits)
    assert np.array_equal(a.select_levels, b.select_levels)


class TestShardedEquivalence:
    """(a) sharded == serial, bit for bit, for every SNG kind."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_process_sharding_is_bit_exact(self, circuit, kind):
        xs = np.linspace(0.0, 1.0, 7)
        schedule = derive_seed_schedule(
            xs.size, np.random.default_rng(77), sng_kind=kind
        )
        serial = simulate_batch(
            circuit, xs, length=256, sng_kind=kind, schedule=schedule
        )
        sharded = simulate_batch_sharded(
            circuit,
            xs,
            length=256,
            sng_kind=kind,
            schedule=schedule,
            workers=2,
        )
        _assert_batches_identical(serial, sharded)

    def test_thread_backend_is_bit_exact(self, circuit):
        xs = np.linspace(0.1, 0.9, 5)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(3))
        serial = simulate_batch(circuit, xs, length=128, schedule=schedule)
        sharded = simulate_batch_sharded(
            circuit,
            xs,
            length=128,
            schedule=schedule,
            workers=2,
            backend="thread",
        )
        _assert_batches_identical(serial, sharded)

    def test_rng_protocol_matches_serial_schedule_run(self, circuit):
        # Deriving the schedule inside the sharded call consumes the rng
        # exactly like derive_seed_schedule would.
        xs = [0.2, 0.5, 0.8]
        sharded = simulate_batch_sharded(
            circuit, xs, length=128, rng=np.random.default_rng(11), workers=2
        )
        schedule = derive_seed_schedule(3, np.random.default_rng(11))
        serial = simulate_batch(circuit, xs, length=128, schedule=schedule)
        _assert_batches_identical(serial, sharded)

    def test_worker_count_does_not_change_bits(self, circuit):
        xs = np.linspace(0.0, 1.0, 6)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(4))
        results = [
            simulate_batch_sharded(
                circuit, xs, length=128, schedule=schedule, workers=w
            )
            for w in (0, 2, 3)
        ]
        _assert_batches_identical(results[0], results[1])
        _assert_batches_identical(results[0], results[2])

    def test_schedule_size_mismatch_rejected(self, circuit):
        schedule = derive_seed_schedule(2, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            simulate_batch_sharded(
                circuit, [0.1, 0.2, 0.3], schedule=schedule, workers=2
            )

    def test_unknown_backend_rejected(self, circuit):
        with pytest.raises(ConfigurationError):
            simulate_batch_sharded(
                circuit, [0.5], workers=2, backend="gpu"
            )


class TestChunkedEquivalence:
    """(b) chunked accumulators == one-shot statistics."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_accumulators_match_one_shot(self, circuit, kind):
        xs = np.linspace(0.0, 1.0, 5)
        length = 700  # not a multiple of the chunk: exercises the tail tile
        schedule = derive_seed_schedule(
            xs.size, np.random.default_rng(21), sng_kind=kind
        )
        one_shot = simulate_batch(
            circuit, xs, length=length, sng_kind=kind, schedule=schedule
        )
        chunked = simulate_chunked(
            circuit,
            xs,
            length=length,
            chunk_length=128,
            sng_kind=kind,
            schedule=schedule,
            power_histogram_bins=16,
        )
        assert isinstance(chunked, ChunkedEvaluation)
        assert chunked.chunk_count == 6
        assert np.array_equal(
            chunked.ones_count, one_shot.output_bits.sum(axis=1)
        )
        assert np.array_equal(
            chunked.transmission_bit_errors, one_shot.transmission_bit_errors
        )
        assert np.array_equal(chunked.values, one_shot.values)
        assert np.array_equal(chunked.expected, one_shot.expected)
        assert chunked.mean_absolute_error == one_shot.mean_absolute_error
        # Histogram covers every received-power sample of the batch.
        assert int(chunked.power_histogram.sum()) == xs.size * length

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_noiseless_accumulators_match(self, circuit, kind):
        xs = [0.3, 0.6]
        schedule = derive_seed_schedule(
            2, np.random.default_rng(5), sng_kind=kind
        )
        one_shot = simulate_batch(
            circuit, xs, length=512, noisy=False, sng_kind=kind,
            schedule=schedule,
        )
        chunked = simulate_chunked(
            circuit, xs, length=512, chunk_length=100, noisy=False,
            sng_kind=kind, schedule=schedule,
        )
        assert np.array_equal(
            chunked.ones_count, one_shot.output_bits.sum(axis=1)
        )
        assert np.array_equal(
            chunked.transmission_bit_errors, one_shot.transmission_bit_errors
        )

    def test_chunk_size_does_not_change_statistics(self, circuit):
        xs = [0.25, 0.75]
        schedule = derive_seed_schedule(2, np.random.default_rng(8))
        runs = [
            simulate_chunked(
                circuit, xs, length=600, chunk_length=c, schedule=schedule
            )
            for c in (64, 150, 600, 4096)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].ones_count, other.ones_count)
            assert np.array_equal(
                runs[0].transmission_bit_errors,
                other.transmission_bit_errors,
            )

    def test_wide_lfsr_chunking_carries_register_state(self, circuit):
        # Widths beyond the cycle-cache limit take the stepping path;
        # the cursor must carry live registers (not replay `offset`
        # states per tile) and still match the one-shot pass exactly.
        xs = [0.3, 0.7]
        schedule = derive_seed_schedule(2, np.random.default_rng(17))
        one_shot = simulate_batch(
            circuit, xs, length=192, sng_width=22, schedule=schedule
        )
        chunked = simulate_chunked(
            circuit, xs, length=192, chunk_length=64, sng_width=22,
            schedule=schedule,
        )
        assert np.array_equal(
            chunked.ones_count, one_shot.output_bits.sum(axis=1)
        )
        assert np.array_equal(
            chunked.transmission_bit_errors, one_shot.transmission_bit_errors
        )

    @pytest.mark.parametrize("kind", ["lfsr", "chaotic"])
    def test_sharded_chunking_matches_serial_chunking(self, circuit, kind):
        # workers compose with chunking: row shards stream on the pool
        # and the reassembled accumulators are identical.
        xs = np.linspace(0.0, 1.0, 5)
        schedule = derive_seed_schedule(
            xs.size, np.random.default_rng(13), sng_kind=kind
        )
        serial = simulate_chunked(
            circuit, xs, length=600, chunk_length=128, sng_kind=kind,
            schedule=schedule, power_histogram_bins=8,
        )
        sharded = simulate_chunked(
            circuit, xs, length=600, chunk_length=128, sng_kind=kind,
            schedule=schedule, power_histogram_bins=8, workers=2,
        )
        assert np.array_equal(serial.ones_count, sharded.ones_count)
        assert np.array_equal(
            serial.transmission_bit_errors, sharded.transmission_bit_errors
        )
        assert np.array_equal(serial.power_histogram, sharded.power_histogram)
        assert np.array_equal(serial.power_bin_edges, sharded.power_bin_edges)
        assert serial.chunk_count == sharded.chunk_count

    def test_validation(self, circuit):
        with pytest.raises(ConfigurationError):
            simulate_chunked(circuit, [0.5], length=128, chunk_length=0)
        with pytest.raises(ConfigurationError):
            simulate_chunked(
                circuit, [0.5], length=128, chunk_length=32,
                power_histogram_bins=-1,
            )


class TestResumableSources:
    """The per-kind resume hooks behind the chunked runtime."""

    def test_lfsr_offset_windows_are_stream_slices(self):
        seeds = np.asarray([[1, 33], [200, 999]])
        full = lfsr_uniform_windows(seeds, 96, 12)
        resumed = lfsr_uniform_windows(seeds, 32, 12, offset=64)
        assert np.array_equal(full[..., 64:], resumed)

    def test_lfsr_offset_wide_register_fallback(self):
        full = lfsr_uniform_windows([5], 40, 22)
        resumed = lfsr_uniform_windows([5], 15, 22, offset=25)
        assert np.array_equal(full[..., 25:], resumed)

    def test_lfsr_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            lfsr_uniform_windows([1], 8, 8, offset=-1)

    def test_chaotic_orbit_state_carry_resumes_exactly(self):
        intensities = np.asarray([0.2, 0.41])
        full = chaotic_orbit(intensities, 64, 50)
        head, state = chaotic_orbit(intensities, 64, 30, return_state=True)
        tail = chaotic_orbit(state, 0, 20)
        assert np.array_equal(full[..., :30], head)
        assert np.array_equal(full[..., 30:], tail)

    def test_exact_bit_window_matches_matrix_columns(self):
        values = np.asarray([0.0, 0.124, 0.5, 1.0])
        matrix = exact_bit_matrix(values, 97)
        for start, stop in ((0, 97), (0, 13), (13, 55), (96, 97)):
            window = exact_bit_window(values, 97, start, stop)
            assert np.array_equal(matrix[:, start:stop], window)

    def test_exact_bit_window_validation(self):
        with pytest.raises(ConfigurationError):
            exact_bit_window([0.5], 16, 4, 4)
        with pytest.raises(ConfigurationError):
            exact_bit_window([0.5], 16, 0, 17)


class TestEvaluationCache:
    """(c) cache hits return identical results and skip recomputation."""

    def test_hit_returns_stored_result(self, circuit):
        cache = EvaluationCache()
        first = cached_simulate_batch(
            circuit, [0.2, 0.8], length=128, base_seed=41, cache=cache
        )
        second = cached_simulate_batch(
            circuit, [0.2, 0.8], length=128, base_seed=41, cache=cache
        )
        assert second is first  # no recomputation: the stored object
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_noisy_cached_runs_are_deterministic(self, circuit):
        # The receiver-noise seeds derive from base_seed, so two caches
        # produce identical noisy results for the same key.
        a = cached_simulate_batch(
            circuit, [0.4], length=256, base_seed=7, cache=EvaluationCache()
        )
        b = cached_simulate_batch(
            circuit, [0.4], length=256, base_seed=7, cache=EvaluationCache()
        )
        assert np.array_equal(a.output_bits, b.output_bits)

    def test_key_separates_configurations(self, circuit):
        cache = EvaluationCache()
        cached_simulate_batch(
            circuit, [0.5], length=128, base_seed=1, cache=cache
        )
        cached_simulate_batch(
            circuit, [0.5], length=128, base_seed=2, cache=cache
        )
        cached_simulate_batch(
            circuit, [0.5], length=128, base_seed=1, sng_kind="sobol",
            cache=cache,
        )
        cached_simulate_batch(
            circuit, [0.5], length=256, base_seed=1, cache=cache
        )
        cached_simulate_batch(
            circuit, [0.25], length=128, base_seed=1, cache=cache
        )
        assert cache.misses == 5
        assert cache.hits == 0

    def test_lru_eviction(self, circuit):
        cache = EvaluationCache(max_entries=2)
        for seed in (1, 2, 3):
            cached_simulate_batch(
                circuit, [0.5], length=64, base_seed=seed, cache=cache
            )
        assert len(cache) == 2
        cached_simulate_batch(  # seed 1 was evicted: a miss again
            circuit, [0.5], length=64, base_seed=1, cache=cache
        )
        assert cache.misses == 4

    def test_requires_fixed_base_seed(self, circuit):
        with pytest.raises(ConfigurationError):
            cached_simulate_batch(circuit, [0.5], base_seed=None)

    def test_stored_arrays_are_immutable(self, circuit):
        # A hit returns the stored object by identity; an in-place
        # mutation by one caller must not corrupt later hits.
        cache = EvaluationCache()
        first = cached_simulate_batch(
            circuit, [0.5], length=64, base_seed=3, cache=cache
        )
        with pytest.raises(ValueError):
            first.values[0] = 123.0
        with pytest.raises(ValueError):
            first.output_bits[0, 0] ^= 1

    def test_callers_input_array_stays_writable(self, circuit):
        # Freezing the stored entry must not freeze the caller's own
        # input buffer (np.asarray can return it by identity).
        xs = np.linspace(0.0, 1.0, 4)
        cached_simulate_batch(
            circuit, xs, length=64, base_seed=2, cache=EvaluationCache()
        )
        xs[0] = 0.5  # must not raise

    def test_matches_schedule_seeded_engine_run(self, circuit):
        cached = cached_simulate_batch(
            circuit, [0.3, 0.7], length=128, base_seed=9,
            cache=EvaluationCache(),
        )
        schedule = derive_seed_schedule(2, base_seed=9)
        direct = simulate_batch(
            circuit, [0.3, 0.7], length=128, schedule=schedule
        )
        _assert_batches_identical(cached, direct)

    def test_concurrent_access_keeps_cache_consistent(self, circuit):
        # backend="thread" shards and the serving executor share the
        # process-wide cache, so lookup/store/clear race in practice.
        # Under the internal lock every lookup bumps exactly one
        # counter and eviction keeps the LRU within bounds.
        cache = EvaluationCache(max_entries=8)
        entry = cached_simulate_batch(
            circuit, [0.5], length=64, base_seed=3, cache=cache
        )
        cache.clear()
        workers, rounds = 4, 200
        errors = []
        barrier = threading.Barrier(workers)

        def hammer(worker):
            barrier.wait()
            try:
                for index in range(rounds):
                    key = ("corner", worker % 2, index % 12)
                    if cache.lookup(key) is None:
                        cache.store(key, entry)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Exactly one counter bump per lookup, none lost to races.
        assert cache.hits + cache.misses == workers * rounds
        assert len(cache) <= 8
        # The cache still serves correct objects afterwards.
        assert cache.lookup(("corner", 0, 0)) in (None, entry)


class TestRunBatchDispatcher:
    def test_strategies_agree_bit_for_bit(self, circuit):
        xs = np.linspace(0.0, 1.0, 6)
        serial = run_batch(circuit, xs, length=256, rng=np.random.default_rng(2))
        sharded = run_batch(
            circuit, xs, length=256, rng=np.random.default_rng(2),
            config=RuntimeConfig(workers=2),
        )
        chunked = run_batch(
            circuit, xs, length=256, rng=np.random.default_rng(2),
            config=RuntimeConfig(chunk_length=100),
        )
        _assert_batches_identical(serial, sharded)
        assert isinstance(chunked, ChunkedEvaluation)
        assert np.array_equal(chunked.values, serial.values)
        assert np.array_equal(
            chunked.transmission_bit_errors, serial.transmission_bit_errors
        )

    def test_cache_dispatch(self, circuit):
        cache = EvaluationCache()
        config = RuntimeConfig(cache=cache)
        a = run_batch(circuit, [0.5], length=64, base_seed=5, config=config)
        b = run_batch(circuit, [0.5], length=64, base_seed=5, config=config)
        assert b is a
        assert cache.hits == 1

    def test_chunking_wins_over_cache_for_long_streams(self, circuit):
        # A stream long enough to chunk must never be materialized
        # one-shot (and pinned) by the cache branch.
        cache = EvaluationCache()
        config = RuntimeConfig(cache=cache, chunk_length=64)
        result = run_batch(
            circuit, [0.5], length=256, base_seed=5, config=config
        )
        assert isinstance(result, ChunkedEvaluation)
        assert len(cache) == 0 and cache.misses == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="quantum")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(chunk_length=0)

    def test_cache_without_base_seed_raises(self, circuit):
        # Silently recomputing while the caller believes memoization is
        # on would defeat the config.
        with pytest.raises(ConfigurationError, match="base_seed"):
            run_batch(
                circuit, [0.5], length=64, config=RuntimeConfig(use_cache=True)
            )

    def test_chunked_validates_backend_eagerly(self, circuit):
        # A backend typo must fail at the call site, not only once
        # workers>1 turns the pool on.
        with pytest.raises(ConfigurationError):
            simulate_chunked(
                circuit, [0.5], length=128, chunk_length=32, backend="treads"
            )

    def test_default_worker_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "3")
        assert default_worker_count() == 3
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "auto")
        assert default_worker_count() >= 1
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "not-a-number")
        assert default_worker_count() == 0
        monkeypatch.delenv("REPRO_RUNTIME_WORKERS")
        assert default_worker_count() == 0


class TestWorkersEnvParsing:
    """A stray REPRO_RUNTIME_WORKERS value must never break anything."""

    @pytest.mark.parametrize(
        "raw", ["abc", "", "   ", "2.5", "1e3", "None", "-"]
    )
    def test_unparsable_values_mean_serial(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", raw)
        assert default_worker_count() == 0

    @pytest.mark.parametrize("raw", ["0", "-1", "-3", " -7 "])
    def test_zero_and_negative_clamp_to_serial(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", raw)
        assert default_worker_count() == 0

    def test_auto_is_case_insensitive_and_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "AUTO")
        assert default_worker_count() >= 1

    def test_whitespace_around_number_is_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "  4  ")
        assert default_worker_count() == 4


def _square(value: float) -> float:
    return value * value


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(17))
        assert parallel_map(_square, items, workers=0) == [
            _square(i) for i in items
        ]
        assert parallel_map(_square, items, workers=3) == [
            _square(i) for i in items
        ]

    def test_thread_backend(self):
        assert parallel_map(_square, [1, 2, 3], workers=2, backend="thread") == [
            1,
            4,
            9,
        ]

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1], workers=2, backend="gpu")

    def test_empty_input_skips_the_pool(self):
        # No pool, no pickling: an unpicklable fn over zero items works
        # even with a process backend and many workers.
        capture = []
        assert parallel_map(capture.append, [], workers=8) == []
        assert capture == []

    def test_single_item_runs_in_process(self):
        # Same fast path for one item: the lambda would fail to pickle
        # if a process pool were constructed.
        state = []
        result = parallel_map(
            lambda v: state.append(v) or v + 1, [41], workers=8
        )
        assert result == [42]
        assert state == [41]  # ran in this process, not a worker


def _sweep_metric(a: float, b: float) -> float:
    return a * 10.0 + b


class TestRoutedConsumers:
    def test_grid_sweep_workers_match_serial(self):
        serial = grid_sweep(_sweep_metric, a=[1.0, 2.0], b=[0.1, 0.2, 0.3])
        pooled = grid_sweep(
            _sweep_metric, workers=2, a=[1.0, 2.0], b=[0.1, 0.2, 0.3]
        )
        assert np.array_equal(serial.values, pooled.values)

    def test_grid_sweep_lambda_falls_back_to_serial(self, monkeypatch):
        # Lambdas cannot cross a process boundary; the environment
        # worker default must not break a previously valid sweep.
        monkeypatch.setenv("REPRO_RUNTIME_WORKERS", "2")
        result = grid_sweep(lambda a, b: a - b, a=[3.0], b=[1.0, 2.0])
        assert np.array_equal(result.values, [[2.0, 1.0]])

    def test_grid_sweep_warns_workers_with_metric_batch(self):
        # The batch hook is one vectorized call; an explicit workers=
        # request alongside it deserves a signal, not silence.
        with pytest.warns(RuntimeWarning, match="no effect"):
            result = grid_sweep(
                metric_batch=lambda a: np.asarray(a) * 2.0,
                workers=4,
                a=[1.0, 2.0],
            )
        assert np.array_equal(result.values, [2.0, 4.0])

    def test_grid_sweep_warns_when_explicit_workers_dropped(self):
        # An explicit workers= request on an unpicklable metric still
        # sweeps serially, but tells the user parallelism was ignored.
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = grid_sweep(lambda a: a * 2.0, workers=2, a=[1.0, 2.0])
        assert np.array_equal(result.values, [2.0, 4.0])

    def test_grid_sweep_thread_backend_skips_picklability_probe(self):
        # Thread workers share the address space: a lambda metric must
        # parallelize there without warnings — and without ever being
        # pickled (the probe on a poisoned metric would throw the
        # result away and demote to serial).
        class PoisonPickle:
            calls = 0

            def __call__(self, a):
                return a * 2.0

            def __reduce__(self):
                raise AssertionError("metric must not be pickled")

        metric = PoisonPickle()
        result = grid_sweep(
            metric,
            workers=2,
            runtime=RuntimeConfig(workers=2, backend="thread"),
            a=[1.0, 2.0, 3.0],
        )
        assert np.array_equal(result.values, [2.0, 4.0, 6.0])

    def test_grid_sweep_single_worker_skips_picklability_probe(self):
        class PoisonPickle:
            def __call__(self, a):
                return a + 1.0

            def __reduce__(self):
                raise AssertionError("metric must not be pickled")

        result = grid_sweep(PoisonPickle(), workers=1, a=[1.0, 2.0])
        assert np.array_equal(result.values, [2.0, 3.0])

    def test_monte_carlo_workers_match_serial(self):
        params = paper_section5a_parameters()
        serial = run_monte_carlo(
            params, samples=8, rng=np.random.default_rng(6), workers=0
        )
        sharded = run_monte_carlo(
            params, samples=8, rng=np.random.default_rng(6), workers=2
        )
        assert np.array_equal(
            serial.eye_openings_mw, sharded.eye_openings_mw
        )
        assert serial.yield_fraction == sharded.yield_fraction


class TestSeedSchedule:
    def test_shard_slices(self):
        schedule = derive_seed_schedule(10, np.random.default_rng(1))
        shard = schedule.shard(3, 7)
        assert shard.batch_size == 4
        assert np.array_equal(shard.data_seeds, schedule.data_seeds[3:7])
        with pytest.raises(ConfigurationError):
            schedule.shard(7, 3)
        with pytest.raises(ConfigurationError):
            schedule.shard(0, 11)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            SeedSchedule(
                data_seeds=[1, 2], coeff_seeds=[3], noise_seeds=[4, 5]
            )

    def test_base_seed_schedule_is_deterministic(self):
        a = derive_seed_schedule(4, np.random.default_rng(0), base_seed=12)
        b = derive_seed_schedule(4, np.random.default_rng(99), base_seed=12)
        assert np.array_equal(a.data_seeds, b.data_seeds)
        assert np.array_equal(a.noise_seeds, b.noise_seeds)


class TestParityRegressions:
    """(d) the scalar/batch parity and frontier API bugfixes."""

    def test_sobol_width_raises_like_scalar(self, circuit):
        # sng_width=32 used to silently produce wrong samples batched
        # while the scalar SobolLikeSNG raised at construction.
        with pytest.raises(ConfigurationError):
            SobolLikeSNG(bits=32)
        with pytest.raises(ConfigurationError):
            simulate_batch(
                circuit, [0.5], length=64, sng_kind="sobol", sng_width=32
            )
        with pytest.raises(ConfigurationError):
            simulate_batch(
                circuit, [0.5], length=64, sng_kind="sobol", sng_width=0
            )
        # In-range widths still evaluate on both paths.
        batch = simulate_batch(
            circuit, [0.5], length=64, sng_kind="sobol", sng_width=30,
            noisy=False, base_seed=3,
        )
        assert batch.batch_size == 1

    def test_negative_base_seed_raises(self, circuit):
        # Negative seeds used to wrap through the uint64 cast (sobol)
        # and the lfsr modulus instead of failing like the factory path.
        for kind in ("lfsr", "sobol", "chaotic"):
            with pytest.raises(ConfigurationError):
                simulate_batch(
                    circuit, [0.5], length=64, sng_kind=kind, base_seed=-1
                )
        with pytest.raises(ConfigurationError):
            derive_seed_schedule(2, base_seed=-7)

    def test_frontier_flags_infeasible_points(self):
        frontier = throughput_accuracy_frontier(
            [1e-6, 0.3], target_rms_error=0.01, probability=0.0
        )
        assert frontier["feasible"].dtype == bool
        assert frontier["feasible"].tolist() == [True, False]
        assert np.isinf(frontier["evaluation_time_s"][1])
        assert np.isfinite(frontier["evaluation_time_s"][0])

    def test_frontier_all_feasible_unchanged(self):
        frontier = throughput_accuracy_frontier(
            [1e-6, 1e-4], target_rms_error=0.02, probability=0.25
        )
        assert frontier["feasible"].all()
        np.testing.assert_allclose(
            frontier["evaluation_time_s"], frontier["stream_length"] / 1e9
        )


class TestSharedArena:
    def test_write_read_roundtrip(self):
        from repro.simulation.transport import SharedArena

        arena = SharedArena(
            {"a": ((4,), np.float64), "b": ((2, 3), np.int64)}
        )
        try:
            arena.write("a", np.array([1.0, 2.0, 3.0, 4.0]))
            arena.write("b", np.arange(6).reshape(2, 3))
            assert np.array_equal(arena.read("a"), [1.0, 2.0, 3.0, 4.0])
            assert np.array_equal(arena.read("a", 1, 3), [2.0, 3.0])
            assert np.array_equal(
                arena.read("b"), np.arange(6).reshape(2, 3)
            )
        finally:
            arena.destroy()

    def test_attach_sees_parent_writes_and_vice_versa(self):
        from repro.simulation.transport import SharedArena

        arena = SharedArena({"rows": ((4, 2), np.uint64)})
        try:
            attached = SharedArena.attach(arena.spec)
            arena.write("rows", np.full((2, 2), 7, dtype=np.uint64), lo=1)
            assert np.array_equal(
                attached.read("rows", 1, 3),
                np.full((2, 2), 7, dtype=np.uint64),
            )
            attached.write("rows", np.full((1, 2), 9, dtype=np.uint64), lo=3)
            attached.close()
            assert np.array_equal(
                arena.read("rows", 3), np.full((1, 2), 9, dtype=np.uint64)
            )
        finally:
            arena.destroy()

    def test_export_views_is_zero_copy_and_self_cleaning(self):
        from repro.simulation.transport import SharedArena

        arena = SharedArena({"x": ((8,), np.float64)})
        name = arena.name
        arena.write("x", np.arange(8.0))
        views = arena.export_views()
        # The segment name is unlinked immediately: nobody new can
        # attach, but the mapped pages stay valid through the views.
        with pytest.raises(FileNotFoundError):
            SharedArena.attach(
                {"name": name, "fields": {"x": ((8,), "<f8", 0)}}
            )
        assert np.array_equal(views["x"], np.arange(8.0))
        assert views["x"].base is not None  # a view, not a copy

    def test_unknown_field_raises(self):
        from repro.simulation.transport import SharedArena

        arena = SharedArena({"x": ((2,), np.float64)})
        try:
            with pytest.raises(ConfigurationError, match="unknown arena"):
                arena.read("y")
        finally:
            arena.destroy()


class TestShmTransport:
    def test_resolve_transport_validates(self):
        from repro.simulation.runtime import TRANSPORTS, resolve_transport

        assert TRANSPORTS == ("pickle", "shm")
        assert resolve_transport("pickle", "thread") == "pickle"
        assert resolve_transport("shm", "process") == "shm"
        with pytest.raises(ConfigurationError, match="unknown transport"):
            resolve_transport("carrier-pigeon")
        with pytest.raises(ConfigurationError, match="process"):
            resolve_transport("shm", "thread")

    def test_runtime_config_rejects_shm_thread_pairing(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="thread", transport="shm")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(transport="smoke-signals")
        assert RuntimeConfig(transport="shm").transport == "shm"

    @pytest.mark.parametrize("kernel", ["numpy", "packed"])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_shm_matches_serial(self, circuit, kernel, workers):
        xs = np.linspace(0.1, 0.9, 5)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(3))
        serial = simulate_batch(
            circuit, xs, length=256, schedule=schedule
        )
        shm = simulate_batch_sharded(
            circuit,
            xs,
            length=256,
            schedule=schedule,
            workers=workers,
            kernel=kernel,
            transport="shm",
        )
        _assert_batches_identical(serial, shm)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sharded_shm_matches_pickle_all_kinds(self, circuit, kind):
        xs = np.linspace(0.1, 0.9, 5)
        schedule = derive_seed_schedule(
            xs.size, sng_kind=kind, base_seed=11
        )
        kwargs = dict(
            length=192, sng_kind=kind, schedule=schedule, workers=2,
            kernel="packed",
        )
        via_pickle = simulate_batch_sharded(
            circuit, xs, transport="pickle", **kwargs
        )
        via_shm = simulate_batch_sharded(
            circuit, xs, transport="shm", **kwargs
        )
        _assert_batches_identical(via_pickle, via_shm)

    def test_sharded_shm_unaligned_length_noiseless(self, circuit):
        # A non-multiple-of-64 length exercises the packed-word tail
        # mask on the shm writeback path.
        xs = np.linspace(0.2, 0.8, 4)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(9))
        serial = simulate_batch(
            circuit, xs, length=250, noisy=False, schedule=schedule
        )
        shm = simulate_batch_sharded(
            circuit,
            xs,
            length=250,
            noisy=False,
            schedule=schedule,
            workers=2,
            kernel="packed",
            transport="shm",
        )
        _assert_batches_identical(serial, shm)

    @pytest.mark.parametrize("kernel", ["numpy", "packed"])
    def test_chunked_shm_matches_serial(self, circuit, kernel):
        xs = np.linspace(0.1, 0.9, 5)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(5))
        serial = simulate_chunked(
            circuit,
            xs,
            length=300,
            chunk_length=96,
            schedule=schedule,
            power_histogram_bins=6,
            workers=0,
        )
        shm = simulate_chunked(
            circuit,
            xs,
            length=300,
            chunk_length=96,
            schedule=schedule,
            power_histogram_bins=6,
            workers=3,
            kernel=kernel,
            transport="shm",
        )
        assert np.array_equal(serial.xs, shm.xs)
        assert np.array_equal(serial.expected, shm.expected)
        assert np.array_equal(serial.ones_count, shm.ones_count)
        assert np.array_equal(
            serial.transmission_bit_errors, shm.transmission_bit_errors
        )
        assert np.array_equal(serial.power_histogram, shm.power_histogram)
        assert np.array_equal(serial.power_bin_edges, shm.power_bin_edges)
        assert serial.chunk_count == shm.chunk_count
        assert serial.chunk_length == shm.chunk_length

    def test_run_batch_routes_transport(self, circuit):
        xs = [0.25, 0.5, 0.75]
        reference = run_batch(
            circuit, xs, length=256, base_seed=4,
            config=RuntimeConfig(workers=0),
        )
        via_shm = run_batch(
            circuit, xs, length=256, base_seed=4,
            config=RuntimeConfig(workers=2, transport="shm", kernel="packed"),
        )
        _assert_batches_identical(reference, via_shm)

    def test_shm_results_survive_gc_and_leak_no_segments(self, circuit):
        import gc
        import os

        def psm_segments():
            try:
                return {
                    f for f in os.listdir("/dev/shm") if f.startswith("psm_")
                }
            except FileNotFoundError:  # non-Linux: nothing to check
                return set()

        before = psm_segments()
        xs = np.linspace(0.1, 0.9, 4)
        result = simulate_batch_sharded(
            circuit, xs, length=128, workers=2, transport="shm",
            rng=np.random.default_rng(2),
        )
        values = result.values.copy()
        del result
        gc.collect()
        assert psm_segments() - before == set()
        assert values.shape == (4,)

    def test_serial_fallback_still_validates_transport(self, circuit):
        with pytest.raises(ConfigurationError):
            simulate_batch_sharded(
                circuit, [0.5], length=64, workers=0, transport="nope",
                rng=np.random.default_rng(1),
            )
        with pytest.raises(ConfigurationError):
            simulate_chunked(
                circuit, [0.5], length=128, chunk_length=32, workers=0,
                transport="shm", backend="thread",
                rng=np.random.default_rng(1),
            )

"""Tests for the pluggable compute-kernel layer (repro.simulation.kernels).

The contract under test: every kernel is **bit-for-bit identical** to
the ``"numpy"`` reference for all four SNG kinds, noisy and noiseless,
one-shot and composed with the chunking/sharding runtime — choosing a
kernel is a pure wall-clock/memory lever.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import ConfigurationError
from repro.simulation import kernels
from repro.simulation.engine import (
    _batch_uniforms,
    derive_seed_schedule,
    simulate_batch,
)
from repro.simulation.kernels import (
    KERNELS,
    PackedChaoticSource,
    PackedLfsrSource,
    PackedSobolSource,
    available_kernels,
    kernel_capabilities,
    pack_bits,
    packed_lfsr_comparator_bits,
    packed_sobol_comparator_bits,
    pass_context,
    popcount,
    resolve_kernel,
    unpack_bits,
)
from repro.simulation.runtime import (
    RuntimeConfig,
    run_batch,
    simulate_batch_sharded,
    simulate_chunked,
)
from repro.stochastic.lfsr import lfsr_uniform_windows
from repro.stochastic.sng import (
    SNG_KINDS,
    derive_lfsr_seeds,
    derive_sobol_offsets,
)

BATCH_FIELDS = (
    "xs",
    "values",
    "expected",
    "received_power_mw",
    "output_bits",
    "ideal_bits",
    "select_levels",
)

NON_NUMPY_KERNELS = [k for k in KERNELS if k != "numpy"]


def _kernel_or_skip(kernel):
    """Skip (never fail) the legs whose kernel is unavailable here."""
    if kernel == "numba":
        pytest.importorskip("numba")
    return kernel


@pytest.fixture(scope="module")
def circuit():
    return repro.OpticalStochasticCircuit(
        repro.paper_section5a_parameters(),
        repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


def assert_batches_equal(reference, other):
    for field in BATCH_FIELDS:
        assert np.array_equal(
            getattr(reference, field), getattr(other, field)
        ), field
    assert np.array_equal(
        reference.transmission_bit_errors, other.transmission_bit_errors
    )


class TestRegistry:
    def test_registry_names(self):
        assert KERNELS == ("numpy", "packed", "numba")
        assert set(available_kernels()) <= set(KERNELS)
        assert "numpy" in available_kernels()
        assert "packed" in available_kernels()

    def test_resolve_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            resolve_kernel("gpu")

    def test_capabilities_cover_registry(self):
        table = kernel_capabilities()
        assert set(table) == set(KERNELS)
        assert table["numpy"]["available"] is True
        assert table["packed"]["bit_tensor_bytes_per_bit"] == pytest.approx(
            1 / 8
        )

    def test_runtime_config_rejects_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            RuntimeConfig(kernel="bogus")

    def test_simulate_batch_rejects_unknown_kernel(self, circuit):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            simulate_batch(circuit, [0.5], length=64, kernel="bogus")

    @pytest.mark.skipif(
        kernels.numba_available(), reason="numba is installed here"
    )
    def test_numba_unavailable_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="numba"):
            RuntimeConfig(kernel="numba")

    def test_pool_backend_and_kernel_are_distinct_knobs(self):
        # Naming hygiene: `backend` picks the worker pool, `kernel` the
        # compute implementation; both validate at construction.
        config = RuntimeConfig(backend="thread", kernel="packed")
        assert config.backend == "thread"
        assert config.kernel == "packed"
        with pytest.raises(ConfigurationError, match="unknown backend"):
            RuntimeConfig(backend="packed")


class TestPackingPrimitives:
    def test_pack_unpack_roundtrip_tail(self):
        rng = np.random.default_rng(1)
        for length in (1, 40, 64, 65, 200, 1000):
            bits = rng.integers(0, 2, size=(3, 2, length), dtype=np.uint8)
            words = pack_bits(bits)
            assert words.shape == (3, 2, (length + 63) // 64)
            assert words.dtype == np.uint64
            assert np.array_equal(unpack_bits(words, length), bits)

    def test_pack_pads_tail_with_zeros(self):
        words = pack_bits(np.ones((1, 70), dtype=np.uint8))
        assert words[0, 1] == (1 << 6) - 1

    def test_popcount_matches_lut(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 1 << 64, size=(5, 7), dtype=np.uint64)
        fast = popcount(words)
        lut = popcount(words, use_lut=True)
        assert fast.dtype == np.int64
        assert np.array_equal(fast, lut)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_packed_popcount_equals_unpacked_sums(self, rows, length, seed):
        # The property the packed statistics accumulators rely on: the
        # popcount of packed words equals the per-row sum of the bits.
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, length), dtype=np.uint8)
        words = pack_bits(bits)
        for use_lut in (False, True):
            counts = popcount(words, use_lut=use_lut).sum(axis=-1)
            assert np.array_equal(counts, bits.sum(axis=1, dtype=np.int64))

    @pytest.mark.parametrize("width", [5, 8, 16])
    def test_packed_lfsr_source_matches_unpacked_windows(self, width):
        seeds = derive_lfsr_seeds(np.array([3, 77]), 3, width)
        values = np.array([[0.1, 0.5, 0.9], [0.25, 0.5, 0.75]])
        for offset, length in ((0, 130), (37, 64), (100, 70001)):
            words = packed_lfsr_comparator_bits(
                seeds, values, length, width, offset=offset
            )
            assert words is not None
            uniforms = lfsr_uniform_windows(seeds, length, width, offset=offset)
            expected = (uniforms < values[..., None]).astype(np.uint8)
            assert np.array_equal(unpack_bits(words, length), expected)

    def test_packed_lfsr_source_resumes_by_offset(self):
        seeds = derive_lfsr_seeds(np.array([9]), 2, 16)
        source = PackedLfsrSource.create(seeds, np.array([[0.3, 0.6]]), 16)
        tiles = [source.take(start, 96) for start in (0, 96, 192)]
        stitched = np.concatenate(
            [unpack_bits(t, 96) for t in tiles], axis=-1
        )
        one_shot = unpack_bits(
            packed_lfsr_comparator_bits(
                seeds, np.array([[0.3, 0.6]]), 288, 16
            ),
            288,
        )
        assert np.array_equal(stitched, one_shot)

    def test_packed_lfsr_wide_register_falls_back(self):
        seeds = derive_lfsr_seeds(np.array([3]), 2, 24)
        assert (
            packed_lfsr_comparator_bits(seeds, np.array([[0.5, 0.5]]), 64, 24)
            is None
        )


class TestPackedWordSources:
    """Sobol and chaotic SNGs generate packed comparator words directly.

    The contract mirrors :class:`PackedLfsrSource`: every word tensor is
    bit-for-bit ``pack_bits(uniforms < values)`` of the float reference,
    with offset resume (index re-aim for Sobol, carried orbit state for
    chaotic) and clean fallbacks where the packed path does not apply.
    """

    @pytest.mark.parametrize("width", [5, 8, 16])
    def test_packed_sobol_matches_unpacked_uniforms(self, width):
        base_seeds = np.array([3, 77])
        values = np.array([[0.1, 0.5, 0.9], [0.25, 0.5, 0.75]])
        offsets = derive_sobol_offsets(base_seeds, 3)
        for offset, length in ((0, 130), (37, 64), (100, 70001)):
            words = packed_sobol_comparator_bits(
                offsets, values, length, width, offset=offset
            )
            assert words is not None
            uniforms = _batch_uniforms(
                "sobol", base_seeds, 3, length, width, offset=offset
            )
            expected = (uniforms < values[..., None]).astype(np.uint8)
            assert np.array_equal(unpack_bits(words, length), expected)

    def test_packed_sobol_resumes_by_offset(self):
        offsets = derive_sobol_offsets(np.array([9]), 2)
        source = PackedSobolSource.create(
            offsets, np.array([[0.3, 0.6]]), 16
        )
        assert source is not None
        tiles = [source.take(start, 96) for start in (0, 96, 192)]
        stitched = np.concatenate(
            [unpack_bits(t, 96) for t in tiles], axis=-1
        )
        one_shot = unpack_bits(
            packed_sobol_comparator_bits(
                offsets, np.array([[0.3, 0.6]]), 288, 16
            ),
            288,
        )
        assert np.array_equal(stitched, one_shot)

    def test_packed_sobol_wide_width_falls_back(self):
        offsets = derive_sobol_offsets(np.array([3]), 2)
        assert (
            packed_sobol_comparator_bits(
                offsets, np.array([[0.5, 0.5]]), 64, 24
            )
            is None
        )

    def test_packed_sobol_rejects_negative_offsets(self):
        with pytest.raises(ConfigurationError):
            PackedSobolSource.create(
                np.array([[-1, 2]]), np.array([[0.5, 0.5]]), 8
            )

    @pytest.mark.parametrize("length", [64, 96, 250, 8192 + 777])
    def test_packed_chaotic_matches_unpacked_orbit(self, length):
        # Lengths straddle the internal packing block (4096 clocks) and
        # non-multiple-of-64 tails.
        base_seeds = np.array([3, 77])
        values = np.array([[0.1, 0.5, 0.9], [0.25, 0.5, 0.75]])
        source = PackedChaoticSource(base_seeds, values, 3)
        words = source.take(0, length)
        uniforms = _batch_uniforms("chaotic", base_seeds, 3, length, 16)
        expected = (uniforms < values[..., None]).astype(np.uint8)
        assert np.array_equal(unpack_bits(words, length), expected)

    def test_packed_chaotic_sequential_resume_is_exact(self):
        base_seeds = np.array([5])
        values = np.array([[0.4, 0.7]])
        source = PackedChaoticSource(base_seeds, values, 2)
        tiles = [source.take(start, 96) for start in (0, 96, 192)]
        stitched = np.concatenate(
            [unpack_bits(t, 96) for t in tiles], axis=-1
        )
        one_shot = PackedChaoticSource(base_seeds, values, 2).take(0, 288)
        assert np.array_equal(stitched, unpack_bits(one_shot, 288))

    def test_packed_chaotic_rejects_non_sequential_resume(self):
        source = PackedChaoticSource(np.array([5]), np.array([[0.5]]), 1)
        source.take(0, 64)
        with pytest.raises(ConfigurationError, match="sequential"):
            source.take(0, 64)
        with pytest.raises(ConfigurationError, match="sequential"):
            source.take(128, 64)


class TestPassContextMemoization:
    def test_context_cached_per_fingerprint(self, circuit):
        kernels.clear_pass_context_cache()
        first = pass_context(circuit)
        assert pass_context(circuit) is first
        twin = repro.OpticalStochasticCircuit(
            repro.paper_section5a_parameters(),
            repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        # Equal design point => same cached context, no rebuild.
        assert pass_context(twin) is first
        other = repro.OpticalStochasticCircuit(
            repro.paper_section5a_parameters(),
            repro.BernsteinPolynomial([0.3, 0.6, 0.4]),
        )
        assert pass_context(other) is not first

    def test_cached_pass_is_bit_identical(self, circuit):
        # The memoized receiver/table must produce exactly the bits the
        # rebuilt-per-call path produced (same schedule, fresh cache vs
        # warm cache).
        xs = np.linspace(0, 1, 6)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(4))
        kernels.clear_pass_context_cache()
        cold = simulate_batch(circuit, xs, length=256, schedule=schedule)
        warm = simulate_batch(circuit, xs, length=256, schedule=schedule)
        assert_batches_equal(cold, warm)

    def test_overlapping_bands_raise_every_call(self, circuit):
        # Failed context builds must not be cached: the engine keeps
        # raising SimulationError for an undecodable design point.  The
        # cache key includes the circuit's concrete type, so even a
        # subclass sharing the healthy fixture's exact design point
        # (identical fingerprint) never reuses its cached context.
        class OverlappingCircuit(repro.OpticalStochasticCircuit):
            def link_budget(self):
                budget = super().link_budget()
                # Pull the '1' band down onto the '0' band: closed eye.
                return dataclasses.replace(
                    budget,
                    one_band_mw=(
                        budget.zero_band_mw[0],
                        budget.one_band_mw[1],
                    ),
                )

        kernels.clear_pass_context_cache()
        simulate_batch(circuit, [0.5], length=64)  # warm the healthy key
        bad = OverlappingCircuit(circuit.params, circuit.polynomial)
        assert bad.fingerprint() == circuit.fingerprint()
        assert not bad.link_budget().bands_separated
        for kernel in ("numpy", "packed"):
            for _ in range(2):
                with pytest.raises(repro.SimulationError, match="overlap"):
                    simulate_batch(bad, [0.5], length=64, kernel=kernel)


class TestKernelParity:
    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    @pytest.mark.parametrize("sng_kind", SNG_KINDS)
    @pytest.mark.parametrize("noisy", [True, False])
    def test_one_shot_parity_schedule(self, circuit, kernel, sng_kind, noisy):
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 6)
        # 300 is neither a multiple of 64 nor below one word.
        schedule = derive_seed_schedule(
            xs.size, np.random.default_rng(13), sng_kind=sng_kind
        )
        reference = simulate_batch(
            circuit,
            xs,
            length=300,
            noisy=noisy,
            sng_kind=sng_kind,
            schedule=schedule,
        )
        other = simulate_batch(
            circuit,
            xs,
            length=300,
            noisy=noisy,
            sng_kind=sng_kind,
            schedule=schedule,
            kernel=kernel,
        )
        assert_batches_equal(reference, other)

    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    @pytest.mark.parametrize("length", [40, 64, 65, 128, 1000])
    def test_one_shot_parity_tails(self, circuit, kernel, length):
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 5)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(7))
        reference = simulate_batch(
            circuit, xs, length=length, schedule=schedule
        )
        other = simulate_batch(
            circuit, xs, length=length, schedule=schedule, kernel=kernel
        )
        assert_batches_equal(reference, other)

    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    @pytest.mark.parametrize("sng_kind", ["lfsr", "sobol"])
    def test_one_shot_parity_rng_protocol(self, circuit, kernel, sng_kind):
        # Without a schedule the engine consumes the caller's rng; the
        # kernels must not perturb that consumption order.
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 4)
        reference = simulate_batch(
            circuit,
            xs,
            length=200,
            rng=np.random.default_rng(21),
            sng_kind=sng_kind,
        )
        other = simulate_batch(
            circuit,
            xs,
            length=200,
            rng=np.random.default_rng(21),
            sng_kind=sng_kind,
            kernel=kernel,
        )
        assert_batches_equal(reference, other)

    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    @pytest.mark.parametrize("sng_width", [5, 8, 16])
    def test_one_shot_parity_base_seed_and_width(
        self, circuit, kernel, sng_width
    ):
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 4)
        reference = simulate_batch(
            circuit, xs, length=500, base_seed=42, sng_width=sng_width
        )
        other = simulate_batch(
            circuit,
            xs,
            length=500,
            base_seed=42,
            sng_width=sng_width,
            kernel=kernel,
        )
        assert_batches_equal(reference, other)


class TestRuntimeComposition:
    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    @pytest.mark.parametrize("sng_kind", SNG_KINDS)
    @pytest.mark.parametrize("noisy", [True, False])
    def test_chunked_statistics_parity(self, circuit, kernel, sng_kind, noisy):
        _kernel_or_skip(kernel)
        xs = np.linspace(0.05, 0.95, 4)
        schedule = derive_seed_schedule(
            xs.size, np.random.default_rng(31), sng_kind=sng_kind
        )
        one_shot = simulate_batch(
            circuit,
            xs,
            length=1000,
            noisy=noisy,
            sng_kind=sng_kind,
            schedule=schedule,
        )
        reference = simulate_chunked(
            circuit,
            xs,
            length=1000,
            chunk_length=96,  # tiles deliberately not 64-aligned
            noisy=noisy,
            sng_kind=sng_kind,
            schedule=schedule,
            power_histogram_bins=16,
            workers=0,
        )
        chunked = simulate_chunked(
            circuit,
            xs,
            length=1000,
            chunk_length=96,
            noisy=noisy,
            sng_kind=sng_kind,
            schedule=schedule,
            power_histogram_bins=16,
            workers=0,
            kernel=kernel,
        )
        assert np.array_equal(
            chunked.ones_count, one_shot.output_bits.sum(axis=1)
        )
        assert np.array_equal(chunked.ones_count, reference.ones_count)
        assert np.array_equal(
            chunked.transmission_bit_errors,
            reference.transmission_bit_errors,
        )
        assert np.array_equal(
            chunked.power_histogram, reference.power_histogram
        )
        assert np.array_equal(chunked.power_bin_edges, reference.power_bin_edges)

    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    def test_sharded_parity(self, circuit, kernel):
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 8)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(5))
        serial = simulate_batch(circuit, xs, length=400, schedule=schedule)
        sharded = simulate_batch_sharded(
            circuit,
            xs,
            length=400,
            schedule=schedule,
            workers=2,
            backend="thread",
            kernel=kernel,
        )
        assert_batches_equal(serial, sharded)

    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    def test_run_batch_strategy_never_changes_bits(self, circuit, kernel):
        _kernel_or_skip(kernel)
        xs = np.linspace(0, 1, 6)
        reference = run_batch(
            circuit, xs, length=512, base_seed=9, config=RuntimeConfig()
        )
        direct = run_batch(
            circuit,
            xs,
            length=512,
            base_seed=9,
            config=RuntimeConfig(kernel=kernel),
        )
        assert_batches_equal(reference, direct)
        sharded = run_batch(
            circuit,
            xs,
            length=512,
            base_seed=9,
            config=RuntimeConfig(
                kernel=kernel, workers=2, backend="thread"
            ),
        )
        assert_batches_equal(reference, sharded)
        chunked_reference = run_batch(
            circuit,
            xs,
            length=512,
            base_seed=9,
            config=RuntimeConfig(chunk_length=128),
        )
        chunked = run_batch(
            circuit,
            xs,
            length=512,
            base_seed=9,
            config=RuntimeConfig(kernel=kernel, chunk_length=128),
        )
        assert np.array_equal(
            chunked.ones_count, chunked_reference.ones_count
        )
        assert np.array_equal(chunked.values, reference.values)

    def test_cache_entries_shared_across_kernels(self, circuit):
        # The kernel is excluded from the cache key on purpose: results
        # are bit-identical, so a packed request may serve a numpy-
        # computed entry (and vice versa) by identity.
        from repro.simulation.runtime import EvaluationCache

        cache = EvaluationCache()
        numpy_config = RuntimeConfig(cache=cache)
        packed_config = RuntimeConfig(cache=cache, kernel="packed")
        first = run_batch(
            circuit, [0.5], length=128, base_seed=5, config=numpy_config
        )
        second = run_batch(
            circuit, [0.5], length=128, base_seed=5, config=packed_config
        )
        assert second is first
        assert cache.hits == 1


class TestSessionAndServing:
    @pytest.mark.parametrize("kernel", NON_NUMPY_KERNELS)
    def test_evaluator_kernel_parity(self, circuit, kernel):
        _kernel_or_skip(kernel)
        spec = repro.EvalSpec(length=256, base_seed=11, noisy=False)
        reference = repro.Evaluator(circuit, spec)
        other = reference.with_kernel(kernel)
        assert other.kernel == kernel
        assert other.spec is reference.spec
        xs = np.linspace(0, 1, 16)
        assert_batches_equal(reference.evaluate(xs), other.evaluate(xs))

    def test_with_kernel_validates(self, circuit):
        session = repro.Evaluator(circuit, repro.EvalSpec(length=64))
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            session.with_kernel("bogus")

    def test_served_bits_identical_across_kernels(self, circuit):
        import asyncio

        spec = repro.EvalSpec(length=128, base_seed=17, noisy=False)
        xs = [0.1, 0.4, 0.8]

        async def serve(evaluator):
            async with repro.BatchServer(evaluator) as server:
                return await server.submit_many(xs)

        reference = asyncio.run(serve(repro.Evaluator(circuit, spec)))
        packed = asyncio.run(
            serve(
                repro.Evaluator(
                    circuit, spec, RuntimeConfig(kernel="packed")
                )
            )
        )
        assert reference == packed


@pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed (clean skip)"
)
class TestNumbaKernel:
    def test_numba_listed_available(self):
        assert "numba" in available_kernels()
        assert kernel_capabilities()["numba"]["available"] is True

    def test_numba_chunked_parity(self, circuit):
        xs = np.linspace(0, 1, 4)
        schedule = derive_seed_schedule(xs.size, np.random.default_rng(2))
        reference = simulate_chunked(
            circuit, xs, length=500, chunk_length=100, schedule=schedule,
            workers=0,
        )
        numba_run = simulate_chunked(
            circuit, xs, length=500, chunk_length=100, schedule=schedule,
            workers=0, kernel="numba",
        )
        assert np.array_equal(reference.ones_count, numba_run.ones_count)
        assert np.array_equal(
            reference.transmission_bit_errors,
            numba_run.transmission_bit_errors,
        )

"""Tests for noise models and fault injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.core.transmission import TransmissionModel
from repro.errors import ConfigurationError
from repro.simulation.faults import (
    FaultInjector,
    with_coefficient_ring_drift,
    with_filter_drift,
)
from repro.simulation.noise import apply_ber_flips, effective_probability_after_flips
from repro.stochastic import BernsteinPolynomial, Bitstream


class TestBerFlips:
    def test_zero_ber_is_identity(self, rng):
        stream = Bitstream.exact(0.3, 256)
        assert apply_ber_flips(stream, 0.0, rng) == stream

    def test_one_ber_inverts(self, rng):
        stream = Bitstream.exact(0.3, 256)
        assert apply_ber_flips(stream, 1.0, rng) == ~stream

    def test_flip_rate_statistics(self, rng):
        stream = Bitstream.exact(0.5, 50_000)
        flipped = apply_ber_flips(stream, 0.1, rng)
        rate = np.mean(stream.bits != flipped.bits)
        assert rate == pytest.approx(0.1, abs=0.01)

    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        ber=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_effective_probability_formula(self, p, ber):
        expected = p + ber * (1 - 2 * p)
        assert effective_probability_after_flips(p, ber) == pytest.approx(
            expected
        )

    def test_bias_bounded_by_ber(self):
        # The error-resilience bound: |bias| <= BER.
        for p in (0.0, 0.25, 0.5, 0.9, 1.0):
            bias = abs(effective_probability_after_flips(p, 0.01) - p)
            assert bias <= 0.01 + 1e-12

    def test_validation(self, rng):
        stream = Bitstream.exact(0.5, 16)
        with pytest.raises(ConfigurationError):
            apply_ber_flips(stream, 1.5, rng)
        with pytest.raises(ConfigurationError):
            apply_ber_flips([0, 1], 0.1, rng)
        with pytest.raises(ConfigurationError):
            effective_probability_after_flips(2.0, 0.1)


class TestFilterDrift:
    def test_drift_shifts_every_level(self):
        params = paper_section5a_parameters()
        drifted = with_filter_drift(params, 0.05)
        errors = TransmissionModel(drifted).tuning_errors_nm()
        np.testing.assert_allclose(errors, 0.05, atol=1e-3)

    def test_drift_reduces_eye(self):
        from repro.core.snr import worst_case_eye

        params = paper_section5a_parameters()
        healthy = worst_case_eye(params).opening
        drifted = worst_case_eye(with_filter_drift(params, 0.08)).opening
        assert drifted < healthy

    def test_excessive_drift_rejected(self):
        params = paper_section5a_parameters()
        with pytest.raises(ConfigurationError):
            with_filter_drift(params, -0.2)  # guard would go negative

    def test_type_check(self):
        with pytest.raises(ConfigurationError):
            with_filter_drift("params", 0.1)


class TestCoefficientRingDrift:
    def test_drift_changes_contrast(self):
        from repro.core.snr import worst_case_eye

        params = paper_section5a_parameters()
        healthy = worst_case_eye(params).opening
        drifted = worst_case_eye(
            with_coefficient_ring_drift(params, 0.05)
        ).opening
        assert drifted != pytest.approx(healthy, rel=1e-3)

    def test_drift_beyond_shift_rejected(self):
        params = paper_section5a_parameters()
        with pytest.raises(ConfigurationError):
            with_coefficient_ring_drift(params, 0.15)

    def test_guard_band_collapse_rejected(self):
        # A guard band narrower than the modulation shift: the collapse
        # check must fire (raise), never silently clamp the guard.
        import dataclasses

        from repro.photonics.wdm import WDMGrid

        params = paper_section5a_parameters()
        grid = params.grid
        narrow = dataclasses.replace(
            params,
            grid=WDMGrid(
                channel_count=grid.channel_count,
                spacing_nm=grid.spacing_nm,
                anchor_nm=grid.anchor_nm,
                guard_nm=0.05,
            ),
        )
        assert narrow.ring_profile.modulation_shift_nm > 0.06
        with pytest.raises(ConfigurationError):
            with_coefficient_ring_drift(narrow, 0.06)


class TestFaultInjector:
    def test_filter_drift_study_degrades_gracefully(self, rng):
        circuit = OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        study = FaultInjector(circuit).filter_drift_study(
            [0.0, 0.04, 0.08], x=0.5, length=2048, rng=rng
        )
        errors = study["absolute_error"]
        # Small drift: output error stays bounded (graceful degradation).
        assert np.isfinite(errors[0])
        assert errors[0] < 0.05

    def test_breaking_drift_recorded_as_nan(self, rng):
        # A drift that collapses the circuit configuration is a NaN
        # point on the curve, not a crash — and only ConfigurationError
        # is treated that way.
        circuit = OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        study = FaultInjector(circuit).filter_drift_study(
            [0.0, -0.2], x=0.5, length=256, rng=rng
        )
        assert np.isfinite(study["absolute_error"][0])
        assert np.isnan(study["absolute_error"][1])
        assert np.isnan(study["transmission_ber"][1])

    def test_type_check(self):
        with pytest.raises(ConfigurationError):
            FaultInjector("circuit")

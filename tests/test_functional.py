"""Integration tests: bit-level simulation of the optical circuit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.design import mrr_first_design
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.simulation.functional import simulate_evaluation, simulate_sweep
from repro.stochastic import BernsteinPolynomial, ReSCUnit
from repro.stochastic.functions import paper_example_bernstein


@pytest.fixture(scope="module")
def paper_circuit() -> OpticalStochasticCircuit:
    return OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )


class TestEndToEnd:
    def test_converges_to_bernstein_value(self, paper_circuit, rng):
        result = simulate_evaluation(paper_circuit, 0.5, length=16384, rng=rng)
        assert result.value == pytest.approx(result.expected, abs=0.02)

    @given(x=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_tracks_function_across_inputs(self, x):
        circuit = OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        result = simulate_evaluation(circuit, x, length=8192)
        assert abs(result.value - result.expected) < 0.04

    def test_high_snr_link_is_error_free(self, paper_circuit, rng):
        # Fig. 5(c) bands at 1 mW probe give SNR ~45: no link errors.
        result = simulate_evaluation(paper_circuit, 0.5, length=8192, rng=rng)
        assert result.transmission_bit_errors == 0

    def test_noiseless_matches_ideal_multiplexer(self, paper_circuit):
        result = simulate_evaluation(
            paper_circuit, 0.3, length=4096, noisy=False
        )
        assert result.transmission_bit_errors == 0
        assert result.output_bits == result.ideal_bits

    def test_select_levels_within_range(self, paper_circuit):
        result = simulate_evaluation(paper_circuit, 0.7, length=1024)
        assert result.select_levels.min() >= 0
        assert result.select_levels.max() <= 2

    def test_powers_fall_in_link_budget_bands(self, paper_circuit):
        result = simulate_evaluation(paper_circuit, 0.5, length=2048)
        budget = paper_circuit.link_budget()
        low = budget.zero_band_mw[0] - 1e-9
        high = budget.one_band_mw[1] + 1e-9
        assert result.received_power_mw.min() >= low
        assert result.received_power_mw.max() <= high

    def test_bookkeeping(self, paper_circuit):
        result = simulate_evaluation(paper_circuit, 0.25, length=512)
        assert result.stream_length == 512
        assert result.x == 0.25
        assert 0.0 <= result.transmission_ber <= 1.0
        assert result.absolute_error == abs(result.value - result.expected)


class TestAgreementWithElectronicReSC:
    def test_optical_and_electronic_agree(self, rng):
        """The optical circuit is a transposition of the electronic ReSC:
        both must converge to the same Bernstein value."""
        program = paper_example_bernstein()
        electronic = ReSCUnit(program)
        design = mrr_first_design(order=3, wl_spacing_nm=1.0, probe_power_mw=1.0)
        optical = OpticalStochasticCircuit.from_design(design, program)
        x = 0.5
        e = electronic.evaluate(x, length=16384)
        o = simulate_evaluation(optical, x, length=16384, rng=rng)
        assert e.value == pytest.approx(o.value, abs=0.03)
        assert e.expected == pytest.approx(o.expected)


class TestDegradedLink:
    def test_low_probe_power_causes_link_errors(self, rng):
        # Starve the probes so receiver noise flips bits.
        params = paper_section5a_parameters(probe_power_mw=0.02)
        circuit = OpticalStochasticCircuit(
            params, BernsteinPolynomial([0.25, 0.625, 0.375])
        )
        result = simulate_evaluation(circuit, 0.5, length=8192, rng=rng)
        assert result.transmission_bit_errors > 0

    def test_graceful_degradation(self, rng):
        """SC error resilience: even a 1e-2-BER-ish link moves the output
        by only about the BER."""
        params = paper_section5a_parameters(probe_power_mw=0.06)
        circuit = OpticalStochasticCircuit(
            params, BernsteinPolynomial([0.25, 0.625, 0.375])
        )
        result = simulate_evaluation(circuit, 0.5, length=16384, rng=rng)
        assert result.transmission_ber > 0.0
        assert result.absolute_error < 10 * max(result.transmission_ber, 0.01)


class TestValidationAndSweep:
    def test_input_validation(self, paper_circuit):
        with pytest.raises(ConfigurationError):
            simulate_evaluation(paper_circuit, 1.5)
        with pytest.raises(ConfigurationError):
            simulate_evaluation(paper_circuit, 0.5, length=0)
        with pytest.raises(ConfigurationError):
            simulate_evaluation("circuit", 0.5)

    def test_sweep_shape(self, paper_circuit, rng):
        values = simulate_sweep(
            paper_circuit, [0.0, 0.5, 1.0], length=2048, rng=rng
        )
        assert values.shape == (3,)
        # Endpoints interpolate b_0 and b_n.
        assert values[0] == pytest.approx(0.25, abs=0.05)
        assert values[2] == pytest.approx(0.375, abs=0.05)

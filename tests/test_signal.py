"""Tests for the SC signal-processing kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import Bitstream
from repro.stochastic.signal import (
    StochasticFIRFilter,
    denormalize_signal,
    moving_average,
    normalize_signal,
)


class TestNormalization:
    def test_roundtrip(self):
        signal = [3.0, -1.0, 2.5, 0.0]
        normalized, offset, scale = normalize_signal(signal)
        np.testing.assert_allclose(
            denormalize_signal(normalized, offset, scale), signal
        )
        assert normalized.min() == 0.0
        assert normalized.max() == 1.0

    def test_constant_signal(self):
        normalized, offset, scale = normalize_signal([2.0, 2.0])
        np.testing.assert_allclose(normalized, 0.5)
        np.testing.assert_allclose(
            denormalize_signal(normalized, offset, scale), [2.0, 2.0]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            normalize_signal([])
        with pytest.raises(ConfigurationError):
            denormalize_signal([0.5], 0.0, 0.0)


class TestFIRFilter:
    def test_expected_output_is_weighted_mean(self):
        fir = StochasticFIRFilter([1.0, 2.0, 1.0])
        assert fir.expected_output([1.0, 0.5, 0.0]) == pytest.approx(
            (1.0 + 2 * 0.5 + 0.0) / 4.0
        )

    def test_filter_streams_converges(self, rng):
        fir = StochasticFIRFilter([1.0, 1.0])
        a = Bitstream.from_probability(0.8, 50_000, rng)
        b = Bitstream.from_probability(0.2, 50_000, rng)
        out = fir.filter_streams([a, b], rng)
        assert out.probability == pytest.approx(0.5, abs=0.02)

    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=4.0), min_size=1, max_size=5
        ),
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_unbiased_for_any_weights(self, weights, values):
        rng = np.random.default_rng(5)
        fir = StochasticFIRFilter(weights)
        taps = [
            Bitstream.exact(v, 20_000)
            for v in values[: fir.tap_count]
        ]
        while len(taps) < fir.tap_count:
            taps.append(Bitstream.exact(0.5, 20_000))
        out = fir.filter_streams(taps, rng)
        expected = fir.expected_output([t.probability for t in taps])
        assert out.probability == pytest.approx(expected, abs=0.02)

    def test_filter_signal_tracks_reference(self, rng):
        fir = StochasticFIRFilter([1.0, 1.0, 1.0, 1.0])
        signal = 0.5 * (1 + np.sin(np.linspace(0, 4 * np.pi, 40))) * 0.9
        stochastic = fir.filter_signal(signal, stream_length=4096, rng=rng)
        padded = np.concatenate([np.zeros(3), signal])
        reference = np.convolve(padded, np.ones(4) / 4, mode="valid")
        assert np.max(np.abs(stochastic - reference)) < 0.06

    def test_moving_average_smooths_noise(self, rng):
        noisy = 0.5 + 0.3 * np.sign(np.sin(np.arange(60)))
        smooth = moving_average(noisy, window=8, stream_length=2048, rng=rng)
        assert np.std(smooth[10:]) < np.std(noisy[10:])

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            StochasticFIRFilter([])
        with pytest.raises(ConfigurationError):
            StochasticFIRFilter([-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            StochasticFIRFilter([0.0, 0.0])
        fir = StochasticFIRFilter([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            fir.filter_streams([Bitstream([0, 1])], rng)
        with pytest.raises(ConfigurationError):
            fir.filter_streams(
                [Bitstream([0, 1]), Bitstream([0, 1, 1])], rng
            )
        with pytest.raises(ConfigurationError):
            fir.filter_signal([1.5], rng=rng)
        with pytest.raises(ConfigurationError):
            fir.filter_signal([0.5], stream_length=0, rng=rng)
        with pytest.raises(ConfigurationError):
            fir.expected_output([0.5])
        with pytest.raises(ConfigurationError):
            moving_average([0.5], window=0, rng=rng)

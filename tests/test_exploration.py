"""Tests for the exploration layer: sweeps, Pareto, tradeoffs, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DesignInfeasibleError, ReproError
from repro.exploration import (
    accuracy_model,
    gamma_correction_case_study,
    grid_sweep,
    order_scaling_table,
    pareto_front,
    stream_length_for_accuracy,
    throughput_accuracy_frontier,
)
from repro.exploration.pareto import is_dominated


class TestGridSweep:
    def test_shape_and_values(self):
        result = grid_sweep(
            lambda a, b: a * 10 + b, a=[1.0, 2.0], b=[0.1, 0.2, 0.3]
        )
        assert result.values.shape == (2, 3)
        assert result.values[1, 2] == pytest.approx(20.3)

    def test_axis_accessor(self):
        result = grid_sweep(lambda a: a, a=[1.0, 2.0])
        np.testing.assert_allclose(result.axis("a"), [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            result.axis("missing")

    def test_failures_become_nan(self):
        def metric(a):
            if a > 1.5:
                raise DesignInfeasibleError("infeasible")
            return a

        result = grid_sweep(metric, a=[1.0, 2.0])
        assert np.isnan(result.values[1])
        assert result.finite_fraction == pytest.approx(0.5)

    def test_argmin_argmax(self):
        result = grid_sweep(lambda a, b: a - b, a=[1.0, 3.0], b=[0.0, 2.0])
        low = result.argmin()
        assert low["a"] == 1.0 and low["b"] == 2.0
        high = result.argmax()
        assert high["a"] == 3.0 and high["b"] == 0.0

    def test_all_nan_argmin_raises(self):
        def metric(a):
            raise DesignInfeasibleError("never works")

        result = grid_sweep(metric, a=[1.0])
        with pytest.raises(ReproError):
            result.argmin()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(lambda: 0.0)
        with pytest.raises(ConfigurationError):
            grid_sweep(lambda a: a, a=[])
        with pytest.raises(ConfigurationError):
            grid_sweep(a=[1.0])
        with pytest.raises(ConfigurationError):
            grid_sweep(
                lambda a: a, metric_batch=lambda a: a, a=[1.0]
            )

    def test_metric_batch_one_pass(self):
        calls = []

        def metric_batch(a, b):
            calls.append((a, b))
            return a * 10 + b

        result = grid_sweep(
            metric_batch=metric_batch, a=[1.0, 2.0], b=[0.1, 0.2, 0.3]
        )
        assert len(calls) == 1  # the whole grid in one vectorized call
        assert calls[0][0].shape == (6,)
        assert result.values.shape == (2, 3)
        assert result.values[1, 2] == pytest.approx(20.3)

    def test_metric_batch_matches_scalar_metric(self):
        scalar = grid_sweep(lambda a, b: a - b, a=[1.0, 3.0], b=[0.0, 2.0])
        batched = grid_sweep(
            metric_batch=lambda a, b: a - b, a=[1.0, 3.0], b=[0.0, 2.0]
        )
        np.testing.assert_array_equal(scalar.values, batched.values)

    def test_metric_batch_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(metric_batch=lambda a: a[:-1], a=[1.0, 2.0])

    def test_metric_batch_repro_error_records_nan(self):
        def metric_batch(a):
            raise DesignInfeasibleError("whole batch infeasible")

        result = grid_sweep(metric_batch=metric_batch, a=[1.0, 2.0])
        assert np.all(np.isnan(result.values))
        assert result.finite_fraction == 0.0


class TestPareto:
    def test_docstring_example(self):
        assert pareto_front([[1, 5], [2, 2], [3, 4], [2, 6]]).tolist() == [0, 1]

    def test_single_point(self):
        assert pareto_front([[1.0, 1.0]]).tolist() == [0]

    def test_is_dominated(self):
        assert is_dominated(np.array([2.0, 2.0]), np.array([[1.0, 1.0]]))
        assert not is_dominated(np.array([1.0, 3.0]), np.array([[2.0, 2.0]]))

    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_front_members_are_mutually_nondominated(self, points):
        front = pareto_front(points)
        array = np.asarray(points, dtype=float)
        selected = array[front]
        for i in range(len(front)):
            others = np.delete(selected, i, axis=0)
            assert not is_dominated(selected[i], others)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pareto_front([])
        with pytest.raises(ConfigurationError):
            pareto_front([[np.nan, 1.0]])


class TestTradeoffs:
    def test_accuracy_model_reduces_to_clt_at_zero_ber(self):
        rms = accuracy_model(1024, 0.0, probability=0.5)
        assert rms == pytest.approx(np.sqrt(0.25 / 1024))

    def test_ber_adds_bias(self):
        clean = accuracy_model(10**9, 0.0, probability=0.2)
        dirty = accuracy_model(10**9, 0.01, probability=0.2)
        assert dirty > clean
        assert dirty == pytest.approx(0.01 * (1 - 0.4), rel=0.05)

    def test_stream_length_roundtrip(self):
        n = stream_length_for_accuracy(0.01, ber=0.001, probability=0.5)
        assert accuracy_model(n, 0.001, probability=0.5) <= 0.01 + 1e-9

    def test_impossible_target_rejected(self):
        with pytest.raises(ConfigurationError):
            stream_length_for_accuracy(0.001, ber=0.01, probability=0.0)

    def test_frontier_monotone(self):
        frontier = throughput_accuracy_frontier(
            [1e-6, 1e-4, 1e-2], target_rms_error=0.02, probability=0.25
        )
        lengths = frontier["stream_length"]
        # Looser links need longer streams for the same accuracy.
        assert lengths[2] >= lengths[1] >= lengths[0]
        np.testing.assert_allclose(
            frontier["evaluation_time_s"], lengths / 1e9
        )

    def test_frontier_validation(self):
        with pytest.raises(ConfigurationError):
            throughput_accuracy_frontier([])


class TestScaling:
    def test_order_scaling_matches_fig7b_shape(self):
        table = order_scaling_table([2, 4], optimal_spacing_nm=0.165)
        assert table["coarse_total_pj"][1] > table["coarse_total_pj"][0]
        assert table["optimal_total_pj"][1] > table["optimal_total_pj"][0]
        assert np.all(table["saving_fraction"] > 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            order_scaling_table([])
        with pytest.raises(ConfigurationError):
            order_scaling_table([0])

    def test_gamma_case_study(self):
        study = gamma_correction_case_study(stream_length=256)
        assert study["order"] == 6
        # Section V-C: 1 GHz optics vs 100 MHz electronics -> 10x.
        assert study["speedup"] == pytest.approx(10.0)
        assert study["energy_per_pixel_pj"] == pytest.approx(
            study["energy_per_bit_pj"] * 256
        )
        assert 0.1 < study["wl_spacing_nm"] < 0.3

    def test_gamma_case_study_validation(self):
        with pytest.raises(ConfigurationError):
            gamma_correction_case_study(bit_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            gamma_correction_case_study(stream_length=0)

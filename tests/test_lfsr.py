"""Tests for the LFSR pseudo-random source."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stochastic import LFSR, MAXIMAL_TAPS


class TestPeriod:
    @pytest.mark.parametrize("width", [3, 4, 5, 6, 7, 8, 9, 10])
    def test_maximal_period(self, width):
        lfsr = LFSR(width=width, seed=1)
        states = lfsr.full_period_states()
        # A maximal LFSR visits every non-zero state exactly once.
        assert len(states) == 2**width - 1
        assert len(set(states.tolist())) == 2**width - 1
        assert 0 not in states

    def test_sequence_repeats_after_period(self):
        lfsr = LFSR(width=5, seed=7)
        first = lfsr.states(lfsr.period).tolist()
        second = lfsr.states(lfsr.period).tolist()
        assert first == second


class TestInterface:
    def test_reset(self):
        lfsr = LFSR(width=8, seed=33)
        a = lfsr.states(10).tolist()
        lfsr.reset()
        b = lfsr.states(10).tolist()
        assert a == b

    def test_uniform_range(self):
        lfsr = LFSR(width=10, seed=5)
        samples = lfsr.uniform(1000)
        assert np.all(samples > 0.0)
        assert np.all(samples < 1.0)

    def test_uniform_mean_near_half(self):
        lfsr = LFSR(width=12, seed=1)
        samples = lfsr.uniform(lfsr.period)
        assert samples.mean() == pytest.approx(0.5, abs=0.01)

    def test_different_seeds_different_sequences(self):
        a = LFSR(width=10, seed=1).states(50).tolist()
        b = LFSR(width=10, seed=513).states(50).tolist()
        assert a != b

    def test_custom_taps(self):
        lfsr = LFSR(width=4, seed=1, taps=(4, 3))
        assert lfsr.taps == (3, 4)
        assert len(lfsr.full_period_states()) == 15


class TestValidation:
    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            LFSR(width=8, seed=0)

    def test_oversized_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            LFSR(width=4, seed=16)

    def test_unknown_width_without_taps(self):
        with pytest.raises(ConfigurationError):
            LFSR(width=40)

    def test_bad_tap_positions(self):
        with pytest.raises(ConfigurationError):
            LFSR(width=4, taps=(5,))

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            LFSR(width=4).states(0)

    def test_tap_table_covers_advertised_widths(self):
        assert set(MAXIMAL_TAPS) == set(range(3, 25))

"""Tests for the async micro-batching service facade (``repro.serving``)."""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError, OverloadedError
from repro.serving import BatchServer, ServingStats
from repro.session import EvalSpec, Evaluator
from repro.stochastic.bernstein import BernsteinPolynomial


def gated_evaluator(evaluator):
    """A derived session whose ``evaluate`` blocks until released.

    Returns ``(session, entered, release)``: ``entered`` is set when an
    evaluation reaches the engine (await it with ``asyncio.to_thread``),
    ``release`` lets it proceed.  This pins the batcher mid-flight so
    tests can script what happens to requests queued behind a busy
    engine — no timing guesses.
    """
    session = Evaluator(evaluator.circuit, evaluator.spec, evaluator.runtime)
    entered = threading.Event()
    release = threading.Event()
    real_evaluate = session.evaluate

    def gated(xs):
        entered.set()
        if not release.wait(timeout=10.0):
            raise RuntimeError("test gate was never released")
        entered.clear()
        return real_evaluate(xs)

    session.evaluate = gated
    return session, entered, release


@pytest.fixture(scope="module")
def circuit():
    return OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


@pytest.fixture(scope="module")
def evaluator(circuit):
    # Row-independent session: pinned seed space, noiseless receiver —
    # each request's result is a pure function of its input.
    return Evaluator(circuit, EvalSpec(length=256, noisy=False, base_seed=7))


class TestConstruction:
    def test_rejects_non_evaluator(self):
        with pytest.raises(ConfigurationError):
            BatchServer(object())

    def test_rejects_bad_knobs(self, evaluator):
        with pytest.raises(ConfigurationError):
            BatchServer(evaluator, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchServer(evaluator, max_batch_delay_s=-0.1)

    def test_rejects_row_dependent_session(self, circuit):
        noisy = Evaluator(circuit, EvalSpec(length=64, base_seed=7))
        with pytest.raises(ConfigurationError, match="row-independent"):
            BatchServer(noisy)
        # The escape hatch still works for whole-batch workloads.
        BatchServer(noisy, allow_row_dependent=True)

    def test_submit_requires_running_server(self, evaluator):
        server = BatchServer(evaluator)

        async def scenario():
            await server.submit(0.5)

        with pytest.raises(ConfigurationError, match="not running"):
            asyncio.run(scenario())


class TestServing:
    def test_coalesced_results_bit_identical_to_direct(self, evaluator):
        xs = np.linspace(0.0, 1.0, 24)
        direct = np.asarray(evaluator.evaluate(xs).values, dtype=float)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_size=32, max_batch_delay_s=0.005
            ) as server:
                values = await server.submit_many(xs)
                return values, server.stats

        values, stats = asyncio.run(scenario())
        assert np.array_equal(np.asarray(values, dtype=float), direct)
        assert stats.requests == xs.size
        # Concurrent submits must actually coalesce.
        assert stats.batches < stats.requests
        assert stats.largest_batch > 1
        assert stats.mean_batch_size > 1.0

    def test_serial_submits_match_coalesced(self, evaluator):
        xs = np.linspace(0.1, 0.9, 8)
        direct = np.asarray(evaluator.evaluate(xs).values, dtype=float)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_delay_s=0.0
            ) as server:
                return [await server.submit(float(x)) for x in xs]

        values = asyncio.run(scenario())
        # One-at-a-time serving (batch size 1 each) returns the same
        # bits as any coalescing: the row-independence guarantee.
        assert np.array_equal(np.asarray(values, dtype=float), direct)

    def test_max_batch_size_bounds_coalescing(self, evaluator):
        xs = np.linspace(0.0, 1.0, 10)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_size=4, max_batch_delay_s=0.005
            ) as server:
                await server.submit_many(xs)
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.largest_batch <= 4
        assert stats.batches >= 3

    def test_invalid_input_fails_eagerly_without_poisoning(self, evaluator):
        async def scenario():
            async with BatchServer(evaluator) as server:
                with pytest.raises(ConfigurationError):
                    await server.submit(1.5)
                with pytest.raises(ConfigurationError):
                    await server.submit("not-a-number")
                return await server.submit(0.5)

        value = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )

    def test_evaluation_failure_propagates_to_callers(self, evaluator):
        broken = Evaluator(
            evaluator.circuit, evaluator.spec, evaluator.runtime
        )

        def explode(xs):
            raise RuntimeError("engine down")

        broken.evaluate = explode

        async def scenario():
            async with BatchServer(broken) as server:
                await server.submit(0.5)

        with pytest.raises(RuntimeError, match="engine down"):
            asyncio.run(scenario())

    def test_stop_drains_pending_requests(self, evaluator):
        async def scenario():
            server = await BatchServer(
                evaluator, max_batch_delay_s=0.05
            ).start()
            tasks = [
                asyncio.create_task(server.submit(x)) for x in (0.2, 0.8)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            await server.stop()
            return await asyncio.gather(*tasks)

        values = asyncio.run(scenario())
        assert len(values) == 2
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_restart_after_stop(self, evaluator):
        async def scenario():
            server = BatchServer(evaluator)
            await server.start()
            first = await server.submit(0.5)
            await server.stop()
            assert not server.running
            await server.start()
            second = await server.submit(0.5)
            await server.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first == second  # deterministic session: bit-identical

    def test_double_start_rejected(self, evaluator):
        async def scenario():
            async with BatchServer(evaluator) as server:
                await server.start()

        with pytest.raises(ConfigurationError, match="already running"):
            asyncio.run(scenario())


class TestClientCancellation:
    """Regression: a cancelled ``submit`` must never crash the batcher.

    Before the package split, a client abandoning its request (e.g. an
    ``asyncio.wait_for`` timeout) left a cancelled future in the queue;
    ``set_result`` on it raised ``InvalidStateError`` inside the serve
    loop and killed the batcher for every other client.
    """

    def test_cancelled_inflight_and_queued_requests(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)

        async def scenario():
            server = await BatchServer(
                session, max_batch_delay_s=0.0
            ).start()
            # First request enters a batch and blocks on the gate.
            inflight = asyncio.create_task(server.submit(0.3))
            await asyncio.to_thread(entered.wait, 10.0)
            # Second request queues behind the busy engine.
            queued = asyncio.create_task(server.submit(0.6))
            await asyncio.sleep(0)
            inflight.cancel()
            queued.cancel()
            await asyncio.sleep(0)
            release.set()
            # The batcher survives both: a fresh request still serves.
            value = await server.submit(0.5)
            metrics = server.metrics()
            await server.stop()
            return value, metrics

        value, metrics = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )
        assert metrics.cancelled == 2
        assert metrics.failed == 0

    def test_wait_for_timeout_does_not_poison_server(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)

        async def scenario():
            async with BatchServer(
                session, max_batch_delay_s=0.0
            ) as server:
                first = asyncio.create_task(server.submit(0.2))
                await asyncio.to_thread(entered.wait, 10.0)
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(server.submit(0.7), timeout=0.01)
                release.set()
                await first
                return await server.submit(0.9), server.metrics()

        value, metrics = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.9]).values[0])
        )
        assert metrics.cancelled == 1


class TestShutdownRaces:
    """Regression: ``stop()`` must be atomic against late ``submit``s.

    The original shutdown pushed a bare ``None`` sentinel; a ``submit``
    racing it could enqueue behind the sentinel and hang forever.  Now
    the accepting flag flips before the sentinel is sent, so both
    orderings are deterministic: early enough to drain, or rejected.
    """

    def test_submit_during_stop_is_rejected(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)

        async def scenario():
            server = await BatchServer(
                session, max_batch_delay_s=0.0
            ).start()
            inflight = asyncio.create_task(server.submit(0.4))
            await asyncio.to_thread(entered.wait, 10.0)
            stopping = asyncio.create_task(server.stop())
            await asyncio.sleep(0)  # stop() has flipped the gate by now
            with pytest.raises(ConfigurationError, match="stopping"):
                await server.submit(0.5)
            release.set()
            await stopping
            return await inflight

        value = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.4]).values[0])
        )

    def test_submit_after_stop_is_rejected(self, evaluator):
        async def scenario():
            server = await BatchServer(evaluator).start()
            await server.submit(0.5)
            await server.stop()
            with pytest.raises(ConfigurationError, match="not running"):
                await server.submit(0.5)

        asyncio.run(scenario())

    def test_dead_executor_fails_submissions_instead_of_hanging(
        self, evaluator
    ):
        async def scenario():
            server = await BatchServer(
                evaluator, max_batch_delay_s=0.0
            ).start()
            await server.submit(0.5)  # healthy first
            server._executor.shutdown(wait=True)
            with pytest.raises(ConfigurationError, match="executor"):
                await asyncio.wait_for(server.submit(0.5), timeout=5.0)
            metrics = server.metrics()
            await server.stop()
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics.failed == 1
        assert metrics.served == 1


class TestAdmission:
    def test_rejects_unknown_policy_and_bad_queue(self, evaluator):
        with pytest.raises(ConfigurationError, match="policy"):
            BatchServer(evaluator, policy="drop")
        with pytest.raises(ConfigurationError, match="max_queue"):
            BatchServer(evaluator, max_queue=-1)

    def test_shed_policy_raises_typed_overload(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)

        async def scenario():
            server = await BatchServer(
                session,
                max_batch_delay_s=0.0,
                policy="shed",
                max_queue=2,
            ).start()
            inflight = asyncio.create_task(server.submit(0.1))
            await asyncio.to_thread(entered.wait, 10.0)
            # Fill the bounded queue behind the busy engine ...
            queued = [
                asyncio.create_task(server.submit(x)) for x in (0.2, 0.3)
            ]
            await asyncio.sleep(0)
            # ... and the next submission sheds instead of queueing.
            with pytest.raises(OverloadedError, match="full"):
                await server.submit(0.4)
            release.set()
            values = [await inflight] + [await task for task in queued]
            metrics = server.metrics()
            await server.stop()
            return values, metrics

        values, metrics = asyncio.run(scenario())
        assert len(values) == 3
        assert metrics.shed == 1
        assert metrics.admitted == 3
        assert metrics.submitted == 4

    def test_block_policy_backpressures_instead_of_shedding(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)

        async def scenario():
            server = await BatchServer(
                session,
                max_batch_delay_s=0.0,
                policy="block",
                max_queue=1,
            ).start()
            inflight = asyncio.create_task(server.submit(0.1))
            await asyncio.to_thread(entered.wait, 10.0)
            # Two more than the queue holds: the extras must wait, not
            # fail — and all of them are eventually served.
            waiting = [
                asyncio.create_task(server.submit(x))
                for x in (0.2, 0.5, 0.8)
            ]
            await asyncio.sleep(0)
            release.set()
            values = [await inflight] + [await task for task in waiting]
            metrics = server.metrics()
            await server.stop()
            return values, metrics

        values, metrics = asyncio.run(scenario())
        assert len(values) == 4
        assert metrics.shed == 0
        assert metrics.served == 4


class TestStats:
    def test_empty_stats(self, evaluator):
        stats = BatchServer(evaluator).stats
        assert stats == ServingStats(requests=0, batches=0, largest_batch=0)
        assert stats.mean_batch_size == 0.0

    def test_metrics_snapshot_empty(self, evaluator):
        snapshot = BatchServer(evaluator).metrics()
        assert snapshot.submitted == 0
        assert snapshot.served == 0
        assert snapshot.breaker_state == "closed"
        assert snapshot.current_rung == 0
        assert snapshot.served_fraction == 1.0
        assert snapshot.rungs == ()
        assert snapshot.stats == ServingStats(
            requests=0, batches=0, largest_batch=0
        )

    def test_metrics_snapshot_after_traffic(self, evaluator):
        xs = np.linspace(0.0, 1.0, 12)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_size=8, max_batch_delay_s=0.005
            ) as server:
                await server.submit_many(xs)
                return server.metrics()

        snapshot = asyncio.run(scenario())
        assert snapshot.submitted == 12
        assert snapshot.admitted == 12
        assert snapshot.served == 12
        assert snapshot.served_fraction == 1.0
        assert snapshot.batches >= 2
        assert snapshot.batch_size.total == snapshot.batches
        assert snapshot.queue_depth.total == 12
        assert len(snapshot.rungs) == 1
        assert snapshot.rungs[0].rung == 0
        assert snapshot.rungs[0].served == 12
        assert snapshot.rungs[0].latency_p99_s >= snapshot.rungs[0].latency_p50_s >= 0.0
        # The legacy view stays consistent with the snapshot.
        assert snapshot.stats.requests == 12
        assert snapshot.stats.mean_batch_size == snapshot.mean_batch_size

"""Tests for the async micro-batching service facade (``repro.serving``)."""

import asyncio

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.serving import BatchServer, ServingStats
from repro.session import EvalSpec, Evaluator
from repro.stochastic.bernstein import BernsteinPolynomial


@pytest.fixture(scope="module")
def circuit():
    return OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


@pytest.fixture(scope="module")
def evaluator(circuit):
    # Row-independent session: pinned seed space, noiseless receiver —
    # each request's result is a pure function of its input.
    return Evaluator(circuit, EvalSpec(length=256, noisy=False, base_seed=7))


class TestConstruction:
    def test_rejects_non_evaluator(self):
        with pytest.raises(ConfigurationError):
            BatchServer(object())

    def test_rejects_bad_knobs(self, evaluator):
        with pytest.raises(ConfigurationError):
            BatchServer(evaluator, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchServer(evaluator, max_batch_delay_s=-0.1)

    def test_rejects_row_dependent_session(self, circuit):
        noisy = Evaluator(circuit, EvalSpec(length=64, base_seed=7))
        with pytest.raises(ConfigurationError, match="row-independent"):
            BatchServer(noisy)
        # The escape hatch still works for whole-batch workloads.
        BatchServer(noisy, allow_row_dependent=True)

    def test_submit_requires_running_server(self, evaluator):
        server = BatchServer(evaluator)

        async def scenario():
            await server.submit(0.5)

        with pytest.raises(ConfigurationError, match="not running"):
            asyncio.run(scenario())


class TestServing:
    def test_coalesced_results_bit_identical_to_direct(self, evaluator):
        xs = np.linspace(0.0, 1.0, 24)
        direct = np.asarray(evaluator.evaluate(xs).values, dtype=float)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_size=32, max_batch_delay_s=0.005
            ) as server:
                values = await server.submit_many(xs)
                return values, server.stats

        values, stats = asyncio.run(scenario())
        assert np.array_equal(np.asarray(values, dtype=float), direct)
        assert stats.requests == xs.size
        # Concurrent submits must actually coalesce.
        assert stats.batches < stats.requests
        assert stats.largest_batch > 1
        assert stats.mean_batch_size > 1.0

    def test_serial_submits_match_coalesced(self, evaluator):
        xs = np.linspace(0.1, 0.9, 8)
        direct = np.asarray(evaluator.evaluate(xs).values, dtype=float)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_delay_s=0.0
            ) as server:
                return [await server.submit(float(x)) for x in xs]

        values = asyncio.run(scenario())
        # One-at-a-time serving (batch size 1 each) returns the same
        # bits as any coalescing: the row-independence guarantee.
        assert np.array_equal(np.asarray(values, dtype=float), direct)

    def test_max_batch_size_bounds_coalescing(self, evaluator):
        xs = np.linspace(0.0, 1.0, 10)

        async def scenario():
            async with BatchServer(
                evaluator, max_batch_size=4, max_batch_delay_s=0.005
            ) as server:
                await server.submit_many(xs)
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.largest_batch <= 4
        assert stats.batches >= 3

    def test_invalid_input_fails_eagerly_without_poisoning(self, evaluator):
        async def scenario():
            async with BatchServer(evaluator) as server:
                with pytest.raises(ConfigurationError):
                    await server.submit(1.5)
                with pytest.raises(ConfigurationError):
                    await server.submit("not-a-number")
                return await server.submit(0.5)

        value = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )

    def test_evaluation_failure_propagates_to_callers(self, evaluator):
        broken = Evaluator(
            evaluator.circuit, evaluator.spec, evaluator.runtime
        )

        def explode(xs):
            raise RuntimeError("engine down")

        broken.evaluate = explode

        async def scenario():
            async with BatchServer(broken) as server:
                await server.submit(0.5)

        with pytest.raises(RuntimeError, match="engine down"):
            asyncio.run(scenario())

    def test_stop_drains_pending_requests(self, evaluator):
        async def scenario():
            server = await BatchServer(
                evaluator, max_batch_delay_s=0.05
            ).start()
            tasks = [
                asyncio.create_task(server.submit(x)) for x in (0.2, 0.8)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            await server.stop()
            return await asyncio.gather(*tasks)

        values = asyncio.run(scenario())
        assert len(values) == 2
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_restart_after_stop(self, evaluator):
        async def scenario():
            server = BatchServer(evaluator)
            await server.start()
            first = await server.submit(0.5)
            await server.stop()
            assert not server.running
            await server.start()
            second = await server.submit(0.5)
            await server.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first == second  # deterministic session: bit-identical

    def test_double_start_rejected(self, evaluator):
        async def scenario():
            async with BatchServer(evaluator) as server:
                await server.start()

        with pytest.raises(ConfigurationError, match="already running"):
            asyncio.run(scenario())


class TestStats:
    def test_empty_stats(self, evaluator):
        stats = BatchServer(evaluator).stats
        assert stats == ServingStats(requests=0, batches=0, largest_batch=0)
        assert stats.mean_batch_size == 0.0

"""Tests for the thermal tuner model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics.thermal import ThermalTuner


@pytest.fixture
def tuner() -> ThermalTuner:
    return ThermalTuner(
        efficiency_nm_per_mw=0.1, max_power_mw=20.0, time_constant_s=4e-6
    )


class TestStatics:
    def test_power_for_shift(self, tuner):
        assert tuner.power_for_shift_mw(0.1) == pytest.approx(1.0)
        assert tuner.power_for_shift_mw(0.0) == 0.0

    def test_max_shift(self, tuner):
        assert tuner.max_shift_nm == pytest.approx(2.0)

    def test_budget_enforced(self, tuner):
        with pytest.raises(ConfigurationError):
            tuner.power_for_shift_mw(2.5)

    def test_red_shift_only(self, tuner):
        with pytest.raises(ConfigurationError):
            tuner.power_for_shift_mw(-0.1)

    def test_holding_energy(self, tuner):
        # Hold 0.1 nm (1 mW) for 1 ms -> 1 uJ.
        assert tuner.holding_energy_j(0.1, 1e-3) == pytest.approx(1e-6)

    def test_calibration_budget_counts_rings(self, tuner):
        # Order-2 circuit: 4 rings (3 modulators + filter).
        total = tuner.calibration_energy_budget_j(0.1, ring_count=4, duration_s=1e-3)
        assert total == pytest.approx(4e-6)
        with pytest.raises(ConfigurationError):
            tuner.calibration_energy_budget_j(0.1, ring_count=0, duration_s=1.0)


class TestDynamics:
    def test_settling_time(self, tuner):
        # tau * ln(100) for 1 % tolerance.
        assert tuner.settling_time_s(0.01) == pytest.approx(
            4e-6 * np.log(100.0)
        )
        with pytest.raises(ConfigurationError):
            tuner.settling_time_s(0.0)

    def test_step_response_asymptote(self, tuner):
        t = np.array([0.0, 4e-6, 40e-6])
        response = tuner.step_response_nm(0.5, t)
        assert response[0] == pytest.approx(0.0)
        assert response[1] == pytest.approx(0.5 * (1 - np.exp(-1.0)))
        assert response[2] == pytest.approx(0.5, abs=1e-4)

    def test_step_response_validates(self, tuner):
        with pytest.raises(ConfigurationError):
            tuner.step_response_nm(0.5, np.array([-1e-6]))
        with pytest.raises(ConfigurationError):
            tuner.step_response_nm(5.0, np.array([0.0]))  # beyond budget

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalTuner(efficiency_nm_per_mw=0.0)
        with pytest.raises(ConfigurationError):
            ThermalTuner(max_power_mw=-1.0)
        with pytest.raises(ConfigurationError):
            ThermalTuner(time_constant_s=0.0)

    def test_loop_bandwidth_consistency(self, tuner):
        """The controller's iteration period must exceed the settling
        time for the dither measurements to be valid — document the
        numbers that make a ~10 kHz calibration loop feasible."""
        settle = tuner.settling_time_s(0.05)
        assert settle < 100e-6  # comfortably inside a 10 kHz loop period

"""Cross-module integration scenarios.

These tests chain the full workflows a user of the library runs:
design -> program -> simulate -> de-randomize, the reproduction loop
(experiments vs core models), and the robustness loop (variation ->
controller -> recovery).
"""

import numpy as np
import pytest

import repro
from repro.simulation.faults import with_filter_drift
from repro.simulation.montecarlo import VariationModel, run_monte_carlo
from repro.stochastic.functions import bernstein_program
from repro.stochastic.image import apply_pixel_kernel, linear_ramp, psnr_db


class TestDesignToSimulationPipeline:
    def test_full_workflow_all_orders(self, rng):
        """Design, program and simulate orders 1..4 in one sweep."""
        for order in (1, 2, 3, 4):
            design = repro.mrr_first_design(
                order=order, wl_spacing_nm=1.0, probe_power_mw=1.0
            )
            ramp = repro.BernsteinPolynomial(
                np.linspace(0.1, 0.9, order + 1)
            )
            circuit = repro.OpticalStochasticCircuit.from_design(design, ramp)
            result = circuit.evaluate(0.5, length=4096, rng=rng)
            assert result.absolute_error < 0.05, f"order {order}"

    def test_designed_ber_matches_observed_link_errors(self, rng):
        """Size the probe for a 1e-2 BER and observe roughly that rate in
        the bit-level simulation — the analytical and simulated layers
        must agree."""
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, target_ber=1e-2
        )
        circuit = repro.OpticalStochasticCircuit.from_design(
            design, repro.BernsteinPolynomial([0.25, 0.5, 0.75])
        )
        total_bits = 60_000
        errors = 0
        for _ in range(4):
            result = circuit.evaluate(0.5, length=total_bits // 4, rng=rng)
            errors += result.transmission_bit_errors
        observed = errors / total_bits
        assert observed == pytest.approx(1e-2, rel=0.5)

    def test_energy_consistent_between_views(self):
        design = repro.mrr_first_design(order=2, wl_spacing_nm=0.165)
        circuit = repro.OpticalStochasticCircuit.from_design(design)
        via_circuit = circuit.energy().total_energy_pj
        via_function = repro.energy_breakdown(design.params).total_energy_pj
        assert via_circuit == pytest.approx(via_function)


class TestImagePipelineIntegration:
    def test_optical_gamma_correction_quality(self, rng):
        """End-to-end §V-C workload: gamma-correct a ramp image through
        the optical circuit and check PSNR against exact math."""
        program = bernstein_program("gamma")
        design = repro.mrr_first_design(order=6, wl_spacing_nm=0.17)
        circuit = repro.OpticalStochasticCircuit.from_design(design, program)

        chart = linear_ramp(16)
        processed = apply_pixel_kernel(
            chart,
            lambda x: circuit.evaluate(x, length=2048, rng=rng).value,
            levels=16,
        )
        exact = chart**0.45
        # Stochastic + approximation error at 2048 bits: well above 20 dB.
        assert psnr_db(exact, processed) > 20.0


class TestRobustnessLoop:
    def test_variation_then_calibration_recovers_yield(self, rng):
        """The paper's reliability story end to end: fabrication
        variation hurts the eye; the controller recovers it."""
        params = repro.paper_section5a_parameters()
        nominal_eye = repro.worst_case_eye(params).opening

        # A badly drifted corner (filter off by 80 pm).
        drifted = with_filter_drift(params, 0.08)
        hurt_eye = repro.worst_case_eye(drifted).opening
        assert hurt_eye < nominal_eye

        circuit = repro.OpticalStochasticCircuit(
            params, repro.BernsteinPolynomial([0.25, 0.5, 0.75])
        )
        controller = repro.CalibrationController(circuit)
        trace = controller.calibrate(initial_drift_nm=0.08, iterations=50)
        assert trace.converged
        recovered = with_filter_drift(
            params, float(trace.residual_drift_nm[-1])
        )
        recovered_eye = repro.worst_case_eye(recovered).opening
        assert recovered_eye == pytest.approx(nominal_eye, rel=0.01)

    def test_monte_carlo_feeds_controller_requirements(self, rng):
        """Monte Carlo quantifies the drift range the controller (and its
        thermal tuner) must cover."""
        from repro.photonics.thermal import ThermalTuner

        params = repro.paper_section5a_parameters()
        result = run_monte_carlo(
            params,
            VariationModel(ring_sigma_nm=0.02, filter_sigma_nm=0.02),
            samples=50,
            rng=rng,
        )
        # 3-sigma correction requirement must fit the heater budget.
        tuner = ThermalTuner()
        worst_correction_nm = 3 * 0.02
        assert tuner.power_for_shift_mw(worst_correction_nm) < tuner.max_power_mw
        assert 0.0 <= result.yield_fraction <= 1.0


class TestReconfigurableIntegration:
    def test_same_hardware_runs_multiple_programs(self, rng):
        hardware = repro.ReconfigurableCircuit(max_order=6, wl_spacing_nm=0.165)
        for name in ("paper_f1", "smoothstep", "gamma"):
            program = bernstein_program(name)
            circuit = hardware.circuit_for(program)
            result = circuit.evaluate(0.5, length=4096, rng=rng)
            assert result.absolute_error < 0.06, name

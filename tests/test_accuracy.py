"""Tests for SC accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import (
    binomial_confidence_interval,
    mean_absolute_error,
    mean_squared_error,
    required_stream_length,
)
from repro.stochastic.accuracy import max_absolute_error, stream_error_std


class TestErrorMetrics:
    def test_mse(self):
        assert mean_squared_error([0.1, 0.2], [0.0, 0.0]) == pytest.approx(
            (0.01 + 0.04) / 2
        )

    def test_mae(self):
        assert mean_absolute_error([0.1, 0.3], [0.0, 0.0]) == pytest.approx(0.2)

    def test_max_error(self):
        assert max_absolute_error([0.1, 0.5], [0.0, 0.0]) == pytest.approx(0.5)

    def test_zero_for_perfect_estimates(self):
        xs = np.linspace(0, 1, 5)
        assert mean_squared_error(xs, xs) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mean_squared_error([0.1], [0.1, 0.2])

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            mean_absolute_error([], [])


class TestStreamStatistics:
    def test_stream_error_std(self):
        assert stream_error_std(0.5, 1024) == pytest.approx(
            np.sqrt(0.25 / 1024)
        )

    def test_confidence_interval_contains_estimate(self):
        low, high = binomial_confidence_interval(300, 1000)
        assert low < 0.3 < high

    def test_confidence_interval_clipping(self):
        low, high = binomial_confidence_interval(0, 10)
        assert low == 0.0
        low, high = binomial_confidence_interval(10, 10)
        assert high == 1.0

    @given(
        eps=st.floats(min_value=0.005, max_value=0.2),
        conf=st.floats(min_value=0.5, max_value=0.999),
    )
    def test_required_length_achieves_target(self, eps, conf):
        n = required_stream_length(eps, conf)
        # Check the defining inequality: z * sqrt(1/(4n)) <= eps.
        from scipy.stats import norm

        z = norm.ppf(0.5 + conf / 2)
        assert z * np.sqrt(0.25 / n) <= eps + 1e-12

    def test_quadratic_scaling(self):
        # Halving epsilon quadruples the stream length (the paper's
        # throughput-accuracy tradeoff).
        n1 = required_stream_length(0.02)
        n2 = required_stream_length(0.01)
        assert n2 == pytest.approx(4 * n1, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_stream_length(0.0)
        with pytest.raises(ConfigurationError):
            required_stream_length(0.01, confidence=1.5)
        with pytest.raises(ConfigurationError):
            binomial_confidence_interval(5, 0)
        with pytest.raises(ConfigurationError):
            binomial_confidence_interval(11, 10)
        with pytest.raises(ConfigurationError):
            stream_error_std(2.0, 10)

"""Tests for ``repro-lint`` (the AST invariant checker itself).

Each rule gets at least one failing fixture and one passing fixture;
plus pragma suppression, the CLI exit-code contract, and the
self-check that ``src/repro`` lints clean.
"""

import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import (
    LintRunner,
    check_api_surface,
    main,
)
from repro.tools.lint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_DIR = REPO_ROOT / "src" / "repro"


def lint_snippet(tmp_path, code, select=None):
    """Lint one fixture module; returns the diagnostics."""
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(code))
    rules = (
        [RULES[name] for name in select]
        if select
        else list(RULES.values())
    )
    runner = LintRunner(rules=rules)
    runner.add_path(path)
    return runner.run()


def rule_names(diagnostics):
    return sorted({diagnostic.rule for diagnostic in diagnostics})


class TestSeedDiscipline:
    """RL001: every RNG traces to a caller-provided seed."""

    def test_legacy_global_state_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
            select=["RL001"],
        )
        assert rule_names(diagnostics) == ["RL001"]
        assert len(diagnostics) == 2

    def test_argless_default_rng_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                return np.random.default_rng().normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1
        assert "OS entropy" in diagnostics[0].message

    def test_inline_literal_seed_in_function_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from numpy.random import default_rng

            def sample(n):
                rng = default_rng(0xBEEF)
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1
        assert "inline numeric-literal seed" in diagnostics[0].message

    def test_legacy_import_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            "from numpy.random import rand\n",
            select=["RL001"],
        )
        assert len(diagnostics) == 1

    def test_disciplined_seeding_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            _STUDY_SEED = 0xBEEF

            def sample(n, seed=_STUDY_SEED, rng=None):
                rng = rng or np.random.default_rng(seed)
                generator: np.random.Generator = rng
                return generator.normal(size=n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []

    def test_module_level_literal_seed_allowed(self, tmp_path):
        # A module-level constant *is* the named-provenance form.
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            _SHARED_RNG = np.random.default_rng(1234)
            """,
            select=["RL001"],
        )
        assert diagnostics == []


def write_api_package(root, init="", api="", session=None, extra=None):
    """Materialize a minimal package for RL002 fixtures."""
    package = root / "pkg"
    package.mkdir()
    (package / "__init__.py").write_text(textwrap.dedent(init))
    (package / "_api.py").write_text(textwrap.dedent(api))
    if session is not None:
        (package / "session.py").write_text(textwrap.dedent(session))
    for relative, text in (extra or {}).items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return package


GOOD_INIT = """
    __all__ = ["__version__"]
    __version__ = "1.0"

    def __getattr__(name):
        raise AttributeError(name)
    """


class TestApiSurface:
    """RL002: the three-way public-API contract, checked statically."""

    def test_consistent_surface_passes(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        assert check_api_surface(package) == []

    def test_dangling_api_name_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run', 'ghost']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert len(diagnostics) == 1
        assert "ghost" in diagnostics[0].message

    def test_duplicate_all_entries_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run', 'run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("duplicate" in d.message for d in diagnostics)

    def test_static_lazy_overlap_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init="""
                __all__ = ["run"]

                def __getattr__(name):
                    raise AttributeError(name)
                """,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("overlap" in d.message for d in diagnostics)

    def test_missing_getattr_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init='__all__ = ["__version__"]\n__version__ = "1.0"\n',
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("__getattr__" in d.message for d in diagnostics)

    def test_removed_wrapper_still_bound_flagged(self, tmp_path):
        session = """
            DEPRECATED_WRAPPERS = {
                "pkg.legacy.old_entry": {
                    "replacement": "run()",
                    "removed": True,
                },
            }
            """
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
            session=session,
            extra={"legacy.py": "def old_entry():\n    return 0\n"},
        )
        diagnostics = check_api_surface(package)
        assert len(diagnostics) == 1
        assert "still bound" in diagnostics[0].message

    def test_removed_wrapper_truly_gone_passes(self, tmp_path):
        session = """
            DEPRECATED_WRAPPERS = {
                "pkg.legacy.old_entry": {
                    "replacement": "run()",
                    "removed": True,
                },
            }
            """
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
            session=session,
            extra={"legacy.py": "def new_entry():\n    return 0\n"},
        )
        assert check_api_surface(package) == []

    def test_runner_discovers_package(self, tmp_path):
        # The project rule finds the package dir from the file set.
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['ghost']\n",
        )
        runner = LintRunner(rules=[RULES["RL002"]])
        runner.add_path(package)
        assert rule_names(runner.run()) == ["RL002"]


class TestAsyncPurity:
    """RL003: no blocking calls directly inside async def bodies."""

    def test_blocking_calls_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            async def handler(future, path):
                time.sleep(0.1)
                value = future.result()
                with open(path) as handle:
                    return handle.read(), value
            """,
            select=["RL003"],
        )
        assert len(diagnostics) == 3

    def test_sync_path_io_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            async def handler(path):
                return path.read_text()
            """,
            select=["RL003"],
        )
        assert len(diagnostics) == 1

    def test_awaited_and_executor_code_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import asyncio

            async def handler(loop, path):
                await asyncio.sleep(0.1)

                def blocking():
                    with open(path) as handle:
                        return handle.read()

                return await loop.run_in_executor(None, blocking)
            """,
            select=["RL003"],
        )
        assert diagnostics == []

    def test_sync_function_exempt(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            def warmup(future):
                time.sleep(0.1)
                return future.result()
            """,
            select=["RL003"],
        )
        assert diagnostics == []


class TestShardSafety:
    """RL004: callables crossing the process boundary must pickle."""

    def test_lambda_argument_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(items):
                return parallel_map(lambda x: x + 1, items)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1
        assert "lambda" in diagnostics[0].message

    def test_lambda_keyword_argument_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(runtime, items):
                return runtime.parallel_map(items, fn=lambda x: x + 1)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1

    def test_closure_local_function_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(items, offset):
                def shift(x):
                    return x + offset

                return simulate_batch_sharded(shift, items)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1
        assert "closure-local" in diagnostics[0].message

    def test_module_level_function_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def shift(x):
                return x + 1

            def run(items):
                return parallel_map(shift, items)
            """,
            select=["RL004"],
        )
        assert diagnostics == []


class TestPackedPurity:
    """RL005: no unpack -> pack round-trips on the packed hot path."""

    def test_direct_round_trip_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def reshard(words, length):
                return pack_bits(unpack_bits(words, length))
            """,
            select=["RL005"],
        )
        assert len(diagnostics) == 1

    def test_tainted_name_round_trip_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def reshard(words, length):
                plane = unpack_bits(words, length)
                masked = plane & 1
                return pack_bits(masked)
            """,
            select=["RL005"],
        )
        assert len(diagnostics) == 1
        assert "round-trip" in diagnostics[0].message

    def test_fresh_bits_pass(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def compare(thresholds, values, words, length):
                bits = values < thresholds
                plane = unpack_bits(words, length)
                total = plane.sum()
                return pack_bits(bits), total
            """,
            select=["RL005"],
        )
        assert diagnostics == []

    def test_taint_is_function_scoped(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def inspect(words, length):
                plane = unpack_bits(words, length)
                return plane.sum()

            def generate(plane):
                return pack_bits(plane)
            """,
            select=["RL005"],
        )
        assert diagnostics == []


class TestHygiene:
    """RL006: bare except and mutable default hygiene."""

    def test_bare_except_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def swallow(fn):
                try:
                    return fn()
                except:
                    return None
            """,
            select=["RL006"],
        )
        assert len(diagnostics) == 1

    def test_mutable_default_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def collect(item, bucket=[], table=dict()):
                bucket.append(item)
                return bucket, table
            """,
            select=["RL006"],
        )
        assert len(diagnostics) == 2

    def test_clean_function_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def collect(item, bucket=None):
                try:
                    bucket = list(bucket or ())
                except TypeError:
                    bucket = []
                bucket.append(item)
                return bucket
            """,
            select=["RL006"],
        )
        assert diagnostics == []


class TestPragmas:
    """``# repro-lint: disable=...`` suppression semantics."""

    def test_line_pragma_suppresses_named_rule(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng()  # repro-lint: disable=RL001
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []

    def test_line_pragma_is_rule_specific(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng()  # repro-lint: disable=RL006
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1

    def test_line_pragma_disable_all(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def swallow(fn, bucket=[]):  # repro-lint: disable=all
                return fn(bucket)
            """,
            select=["RL006"],
        )
        assert diagnostics == []

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable-file=RL001
            import numpy as np

            def sample(n):
                return np.random.default_rng().normal(size=n)

            def resample(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []


class TestCLI:
    """Exit-code contract of ``python -m repro.tools.lint``."""

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "RL999", "."]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n")
        assert main([str(path)]) == 0

    def test_violation_exits_one(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RL006" in out
        assert f"{path}:1:" in out

    def test_unparsable_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert main([str(path)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_disable_skips_rule(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main(["--disable", "RL006", str(path)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert name in out


class TestSelfCheck:
    """The shipped library must satisfy its own linter."""

    def test_src_repro_lints_clean(self, capsys):
        assert PACKAGE_DIR.is_dir()
        assert main([str(PACKAGE_DIR)]) == 0

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_each_rule_clean_individually(self, rule, capsys):
        assert main(["--select", rule, str(PACKAGE_DIR)]) == 0

"""Tests for ``repro-lint`` (the AST invariant checker itself).

Each rule gets at least one failing fixture and one passing fixture;
plus pragma suppression, the CLI exit-code contract, and the
self-check that ``src/repro`` lints clean.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import (
    LintRunner,
    build_call_graph,
    build_cfg,
    check_api_surface,
    forward_may,
    main,
    module_name_for,
)
from repro.tools.lint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_DIR = REPO_ROOT / "src" / "repro"


def lint_snippet(tmp_path, code, select=None):
    """Lint one fixture module; returns the diagnostics."""
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(code))
    rules = (
        [RULES[name] for name in select]
        if select
        else list(RULES.values())
    )
    runner = LintRunner(rules=rules)
    runner.add_path(path)
    return runner.run()


def rule_names(diagnostics):
    return sorted({diagnostic.rule for diagnostic in diagnostics})


class TestSeedDiscipline:
    """RL001: every RNG traces to a caller-provided seed."""

    def test_legacy_global_state_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
            select=["RL001"],
        )
        assert rule_names(diagnostics) == ["RL001"]
        assert len(diagnostics) == 2

    def test_argless_default_rng_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                return np.random.default_rng().normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1
        assert "OS entropy" in diagnostics[0].message

    def test_inline_literal_seed_in_function_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from numpy.random import default_rng

            def sample(n):
                rng = default_rng(0xBEEF)
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1
        assert "inline numeric-literal seed" in diagnostics[0].message

    def test_legacy_import_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            "from numpy.random import rand\n",
            select=["RL001"],
        )
        assert len(diagnostics) == 1

    def test_disciplined_seeding_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            _STUDY_SEED = 0xBEEF

            def sample(n, seed=_STUDY_SEED, rng=None):
                rng = rng or np.random.default_rng(seed)
                generator: np.random.Generator = rng
                return generator.normal(size=n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []

    def test_module_level_literal_seed_allowed(self, tmp_path):
        # A module-level constant *is* the named-provenance form.
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            _SHARED_RNG = np.random.default_rng(1234)
            """,
            select=["RL001"],
        )
        assert diagnostics == []


def write_api_package(root, init="", api="", session=None, extra=None):
    """Materialize a minimal package for RL002 fixtures."""
    package = root / "pkg"
    package.mkdir()
    (package / "__init__.py").write_text(textwrap.dedent(init))
    (package / "_api.py").write_text(textwrap.dedent(api))
    if session is not None:
        (package / "session.py").write_text(textwrap.dedent(session))
    for relative, text in (extra or {}).items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return package


GOOD_INIT = """
    __all__ = ["__version__"]
    __version__ = "1.0"

    def __getattr__(name):
        raise AttributeError(name)
    """


class TestApiSurface:
    """RL002: the three-way public-API contract, checked statically."""

    def test_consistent_surface_passes(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        assert check_api_surface(package) == []

    def test_dangling_api_name_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run', 'ghost']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert len(diagnostics) == 1
        assert "ghost" in diagnostics[0].message

    def test_duplicate_all_entries_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run', 'run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("duplicate" in d.message for d in diagnostics)

    def test_static_lazy_overlap_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init="""
                __all__ = ["run"]

                def __getattr__(name):
                    raise AttributeError(name)
                """,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("overlap" in d.message for d in diagnostics)

    def test_missing_getattr_flagged(self, tmp_path):
        package = write_api_package(
            tmp_path,
            init='__all__ = ["__version__"]\n__version__ = "1.0"\n',
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
        )
        diagnostics = check_api_surface(package)
        assert any("__getattr__" in d.message for d in diagnostics)

    def test_removed_wrapper_still_bound_flagged(self, tmp_path):
        session = """
            DEPRECATED_WRAPPERS = {
                "pkg.legacy.old_entry": {
                    "replacement": "run()",
                    "removed": True,
                },
            }
            """
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
            session=session,
            extra={"legacy.py": "def old_entry():\n    return 0\n"},
        )
        diagnostics = check_api_surface(package)
        assert len(diagnostics) == 1
        assert "still bound" in diagnostics[0].message

    def test_removed_wrapper_truly_gone_passes(self, tmp_path):
        session = """
            DEPRECATED_WRAPPERS = {
                "pkg.legacy.old_entry": {
                    "replacement": "run()",
                    "removed": True,
                },
            }
            """
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['run']\n\ndef run():\n    return 1\n",
            session=session,
            extra={"legacy.py": "def new_entry():\n    return 0\n"},
        )
        assert check_api_surface(package) == []

    def test_runner_discovers_package(self, tmp_path):
        # The project rule finds the package dir from the file set.
        package = write_api_package(
            tmp_path,
            init=GOOD_INIT,
            api="__all__ = ['ghost']\n",
        )
        runner = LintRunner(rules=[RULES["RL002"]])
        runner.add_path(package)
        assert rule_names(runner.run()) == ["RL002"]


class TestAsyncPurity:
    """RL003: no blocking calls directly inside async def bodies."""

    def test_blocking_calls_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            async def handler(future, path):
                time.sleep(0.1)
                value = future.result()
                with open(path) as handle:
                    return handle.read(), value
            """,
            select=["RL003"],
        )
        assert len(diagnostics) == 3

    def test_sync_path_io_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            async def handler(path):
                return path.read_text()
            """,
            select=["RL003"],
        )
        assert len(diagnostics) == 1

    def test_awaited_and_executor_code_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import asyncio

            async def handler(loop, path, executor):
                await asyncio.sleep(0.1)

                def blocking():
                    with open(path) as handle:
                        return handle.read()

                return await loop.run_in_executor(executor, blocking)
            """,
            select=["RL003"],
        )
        assert diagnostics == []

    def test_anonymous_default_executor_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            async def handler(loop, fn, xs):
                return await loop.run_in_executor(None, fn, xs)
            """,
            select=["RL003"],
        )
        assert len(diagnostics) == 1
        assert "anonymous" in diagnostics[0].message

    def test_named_owned_executor_passes(self, tmp_path):
        # The server pattern: a named, server-owned, bounded executor
        # that stop() can drain — exactly what the rule steers toward.
        diagnostics = lint_snippet(
            tmp_path,
            """
            async def handler(loop, server, xs):
                return await loop.run_in_executor(
                    server._executor, server.evaluate, xs
                )
            """,
            select=["RL003"],
        )
        assert diagnostics == []

    def test_sync_function_exempt(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            def warmup(future):
                time.sleep(0.1)
                return future.result()
            """,
            select=["RL003"],
        )
        assert diagnostics == []


class TestShardSafety:
    """RL004: callables crossing the process boundary must pickle."""

    def test_lambda_argument_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(items):
                return parallel_map(lambda x: x + 1, items)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1
        assert "lambda" in diagnostics[0].message

    def test_lambda_keyword_argument_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(runtime, items):
                return runtime.parallel_map(items, fn=lambda x: x + 1)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1

    def test_closure_local_function_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def run(items, offset):
                def shift(x):
                    return x + offset

                return simulate_batch_sharded(shift, items)
            """,
            select=["RL004"],
        )
        assert len(diagnostics) == 1
        assert "closure-local" in diagnostics[0].message

    def test_module_level_function_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def shift(x):
                return x + 1

            def run(items):
                return parallel_map(shift, items)
            """,
            select=["RL004"],
        )
        assert diagnostics == []


class TestPackedPurity:
    """RL005: no unpack -> pack round-trips on the packed hot path."""

    def test_direct_round_trip_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def reshard(words, length):
                return pack_bits(unpack_bits(words, length))
            """,
            select=["RL005"],
        )
        assert len(diagnostics) == 1

    def test_tainted_name_round_trip_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def reshard(words, length):
                plane = unpack_bits(words, length)
                masked = plane & 1
                return pack_bits(masked)
            """,
            select=["RL005"],
        )
        assert len(diagnostics) == 1
        assert "round-trip" in diagnostics[0].message

    def test_fresh_bits_pass(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def compare(thresholds, values, words, length):
                bits = values < thresholds
                plane = unpack_bits(words, length)
                total = plane.sum()
                return pack_bits(bits), total
            """,
            select=["RL005"],
        )
        assert diagnostics == []

    def test_taint_is_function_scoped(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def inspect(words, length):
                plane = unpack_bits(words, length)
                return plane.sum()

            def generate(plane):
                return pack_bits(plane)
            """,
            select=["RL005"],
        )
        assert diagnostics == []


class TestHygiene:
    """RL006: bare except and mutable default hygiene."""

    def test_bare_except_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def swallow(fn):
                try:
                    return fn()
                except:
                    return None
            """,
            select=["RL006"],
        )
        assert len(diagnostics) == 1

    def test_mutable_default_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def collect(item, bucket=[], table=dict()):
                bucket.append(item)
                return bucket, table
            """,
            select=["RL006"],
        )
        assert len(diagnostics) == 2

    def test_clean_function_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def collect(item, bucket=None):
                try:
                    bucket = list(bucket or ())
                except TypeError:
                    bucket = []
                bucket.append(item)
                return bucket
            """,
            select=["RL006"],
        )
        assert diagnostics == []


class TestPragmas:
    """``# repro-lint: disable=...`` suppression semantics."""

    def test_line_pragma_suppresses_named_rule(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng()  # repro-lint: disable=RL001
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []

    def test_line_pragma_is_rule_specific(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng()  # repro-lint: disable=RL006
                return rng.normal(size=n)
            """,
            select=["RL001"],
        )
        assert len(diagnostics) == 1

    def test_line_pragma_disable_all(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def swallow(fn, bucket=[]):  # repro-lint: disable=all
                return fn(bucket)
            """,
            select=["RL006"],
        )
        assert diagnostics == []

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            # repro-lint: disable-file=RL001
            import numpy as np

            def sample(n):
                return np.random.default_rng().normal(size=n)

            def resample(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
            select=["RL001"],
        )
        assert diagnostics == []


class TestCLI:
    """Exit-code contract of ``python -m repro.tools.lint``."""

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "RL999", "."]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n")
        assert main([str(path)]) == 0

    def test_violation_exits_one(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RL006" in out
        assert f"{path}:1:" in out

    def test_unparsable_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert main([str(path)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_disable_skips_rule(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main(["--disable", "RL006", str(path)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009",
        ):
            assert name in out


class TestSelfCheck:
    """The shipped library must satisfy its own linter."""

    def test_src_repro_lints_clean(self, capsys):
        assert PACKAGE_DIR.is_dir()
        assert main([str(PACKAGE_DIR)]) == 0

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_each_rule_clean_individually(self, rule, capsys):
        assert main(["--select", rule, str(PACKAGE_DIR)]) == 0


# -- dataflow machinery -------------------------------------------------------


def fixture_cfg(code):
    """``(func_node, cfg)`` for the last definition in *code*."""
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[-1]
    return func, build_cfg(func)


def only_node(func, kind, predicate=None):
    """The unique AST node of *kind* in *func* (asserts uniqueness)."""
    found = [
        node
        for node in ast.walk(func)
        if isinstance(node, kind) and (predicate is None or predicate(node))
    ]
    assert len(found) == 1, found
    return found[0]


class TestCFG:
    """build_cfg: joins, loops, try/finally, with, early returns."""

    def test_if_else_branches_join(self):
        func, cfg = fixture_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        then_stmt, else_stmt = [
            node for node in ast.walk(func) if isinstance(node, ast.Assign)
        ]
        join = cfg.node_for(only_node(func, ast.Return))
        assert join in cfg.succ[cfg.node_for(then_stmt)]
        assert join in cfg.succ[cfg.node_for(else_stmt)]
        assert cfg.exit in cfg.succ[join]

    def test_if_without_else_keeps_fall_through(self):
        func, cfg = fixture_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                return 0
            """
        )
        test_node = cfg.node_for(only_node(func, ast.If))
        body = cfg.node_for(only_node(func, ast.Assign))
        join = cfg.node_for(only_node(func, ast.Return))
        assert cfg.succ[test_node] == {body, join}
        assert join in cfg.succ[body]

    def test_while_loop_back_edge_and_exit(self):
        func, cfg = fixture_cfg(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        head = cfg.node_for(only_node(func, ast.While))
        body = cfg.node_for(only_node(func, ast.AugAssign))
        out = cfg.node_for(only_node(func, ast.Return))
        assert cfg.succ[head] == {body, out}
        assert head in cfg.succ[body]  # the back edge

    def test_for_loop_break_exits_loop(self):
        func, cfg = fixture_cfg(
            """
            def f(items):
                for item in items:
                    break
                return items
            """
        )
        break_node = cfg.node_for(only_node(func, ast.Break))
        out = cfg.node_for(only_node(func, ast.Return))
        assert out in cfg.succ[break_node]

    def test_early_return_edges_to_exit(self):
        func, cfg = fixture_cfg(
            """
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        early = cfg.node_for(
            only_node(
                func,
                ast.Return,
                lambda node: getattr(node.value, "value", None) == 1,
            )
        )
        assert cfg.succ[early] == {cfg.exit}

    def test_return_routes_through_finally(self):
        func, cfg = fixture_cfg(
            """
            def f(handle):
                try:
                    return handle.size
                finally:
                    handle.close()
            """
        )
        ret = cfg.node_for(only_node(func, ast.Return))
        fin = cfg.node_for(
            only_node(
                func,
                ast.Expr,
                lambda node: isinstance(node.value, ast.Call),
            )
        )
        assert cfg.succ[ret] == {fin}  # not straight to exit
        assert cfg.exit in cfg.succ[fin]

    def test_with_header_precedes_body(self):
        func, cfg = fixture_cfg(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
            """
        )
        header = cfg.node_for(only_node(func, ast.With))
        body = cfg.node_for(only_node(func, ast.Assign))
        out = cfg.node_for(only_node(func, ast.Return))
        assert body in cfg.succ[header]
        assert out in cfg.succ[body]

    def test_forward_may_fact_survives_unkilled_branch(self):
        func, cfg = fixture_cfg(
            """
            def f(flag):
                h = acquire()
                if flag:
                    h.close()
                return 0
            """
        )
        acquire = cfg.node_for(
            only_node(
                func,
                ast.Assign,
                lambda node: isinstance(node.targets[0], ast.Name),
            )
        )
        close = cfg.node_for(
            only_node(
                func,
                ast.Expr,
                lambda node: isinstance(node.value, ast.Call),
            )
        )
        solved = forward_may(cfg, {acquire: {"h"}}, {close: {"h"}})
        assert "h" in solved.in_sets[cfg.exit]  # leak via the else path

    def test_forward_may_fact_killed_on_all_paths(self):
        func, cfg = fixture_cfg(
            """
            def f(flag):
                h = acquire()
                if flag:
                    h.close()
                else:
                    h.close()
                return 0
            """
        )
        acquire = cfg.node_for(
            only_node(
                func,
                ast.Assign,
                lambda node: isinstance(node.targets[0], ast.Name),
            )
        )
        kills = {
            cfg.node_for(node): {"h"}
            for node in ast.walk(func)
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
        }
        solved = forward_may(cfg, {acquire: {"h"}}, kills)
        assert "h" not in solved.in_sets[cfg.exit]


def graph_of(modules):
    """Call graph over ``{module_name: source}`` fixtures."""
    return build_call_graph(
        [
            (name, ast.parse(textwrap.dedent(source)))
            for name, source in modules.items()
        ]
    )


class TestCallGraph:
    """Module-qualified call resolution and dispatch entry points."""

    def test_aliased_import_resolves(self):
        graph = graph_of(
            {
                "pkg.worklib": """
                    def work():
                        return 1
                """,
                "pkg.driver": """
                    import pkg.worklib as lib

                    def run():
                        return lib.work()
                """,
            }
        )
        assert "pkg.worklib.work" in graph.edges.get("pkg.driver.run", set())

    def test_from_import_alias_resolves(self):
        graph = graph_of(
            {
                "pkg.worklib": """
                    def work():
                        return 1
                """,
                "pkg.driver": """
                    from pkg.worklib import work as do_work

                    def run():
                        return do_work()
                """,
            }
        )
        assert "pkg.worklib.work" in graph.edges.get("pkg.driver.run", set())

    def test_self_method_call_resolves(self):
        graph = graph_of(
            {
                "mod": """
                    class Engine:
                        def outer(self):
                            return self.inner()

                        def inner(self):
                            return 1
                """,
            }
        )
        assert "mod.Engine.inner" in graph.edges.get("mod.Engine.outer", set())

    def test_local_instance_method_resolves(self):
        graph = graph_of(
            {
                "mod": """
                    class Engine:
                        def inner(self):
                            return 1

                    def run():
                        engine = Engine()
                        return engine.inner()
                """,
            }
        )
        assert "mod.Engine.inner" in graph.edges.get("mod.run", set())

    def test_nested_def_gets_parent_edge(self):
        graph = graph_of(
            {
                "mod": """
                    def outer():
                        def helper():
                            return 1
                        return helper
                """,
            }
        )
        assert "mod.outer.helper" in graph.functions
        assert "mod.outer.helper" in graph.edges.get("mod.outer", set())

    def test_thread_target_is_entry(self):
        graph = graph_of(
            {
                "mod": """
                    import threading

                    def worker():
                        return 1

                    def launch():
                        threading.Thread(target=worker).start()
                """,
            }
        )
        assert "mod.worker" in graph.thread_entries

    def test_parallel_map_argument_is_entry(self):
        graph = graph_of(
            {
                "mod": """
                    from repro.simulation.runtime import parallel_map

                    def corner(payload):
                        return payload

                    def sweep(items):
                        return parallel_map(corner, items)
                """,
            }
        )
        assert "mod.corner" in graph.thread_entries

    def test_reachable_is_transitive(self):
        graph = graph_of(
            {
                "mod": """
                    def a():
                        return b()

                    def b():
                        return c()

                    def c():
                        return 1
                """,
            }
        )
        assert graph.reachable({"mod.a"}) == {"mod.a", "mod.b", "mod.c"}

    def test_module_name_for_walks_packages(self, tmp_path):
        package = tmp_path / "outer" / "inner"
        package.mkdir(parents=True)
        (tmp_path / "outer" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        target = package / "module.py"
        target.write_text("")
        assert module_name_for(target) == "outer.inner.module"
        assert module_name_for(package / "__init__.py") == "outer.inner"


class TestResourceLifecycle:
    """RL007: acquisitions must reach a release on every CFG path."""

    def test_branch_local_release_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def leaky(name, flag):
                shm = SharedMemory(name=name)
                if flag:
                    shm.close()
                return 0
            """,
            select=["RL007"],
        )
        assert rule_names(diagnostics) == ["RL007"]
        assert "'shm'" in diagnostics[0].message

    def test_early_return_leak_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def early(name, flag):
                shm = SharedMemory(name=name)
                if flag:
                    return 0
                shm.close()
                return 1
            """,
            select=["RL007"],
        )
        assert rule_names(diagnostics) == ["RL007"]

    def test_try_finally_release_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def careful(name):
                shm = SharedMemory(name=name)
                try:
                    return 0
                finally:
                    shm.close()
            """,
            select=["RL007"],
        )
        assert diagnostics == []

    def test_release_on_every_branch_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor

            def balanced(flag):
                pool = ProcessPoolExecutor()
                if flag:
                    pool.shutdown()
                    return 1
                pool.shutdown()
                return 0
            """,
            select=["RL007"],
        )
        assert diagnostics == []

    def test_ownership_transfer_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def handoff(name, registry):
                shm = SharedMemory(name=name)
                registry.adopt(shm)
                return 0
            """,
            select=["RL007"],
        )
        assert diagnostics == []

    def test_returned_resource_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def factory(name):
                shm = SharedMemory(name=name, create=True)
                return shm
            """,
            select=["RL007"],
        )
        assert diagnostics == []


class TestLockDiscipline:
    """RL008: thread-reachable shared-state mutation needs its lock."""

    def test_unguarded_mutation_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            _CACHE = {}
            _CACHE_LOCK = threading.Lock()

            def worker(key):
                _CACHE[key] = 1
                return _CACHE[key]

            def launch():
                threading.Thread(target=worker).start()
            """,
            select=["RL008"],
        )
        assert rule_names(diagnostics) == ["RL008"]

    def test_guarded_mutation_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            _CACHE = {}
            _CACHE_LOCK = threading.Lock()

            def worker(key):
                with _CACHE_LOCK:
                    _CACHE[key] = 1
                return 1

            def launch():
                threading.Thread(target=worker).start()
            """,
            select=["RL008"],
        )
        assert diagnostics == []

    def test_unreachable_function_not_flagged(self, tmp_path):
        # No thread entry point: single-threaded mutation is fine.
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            _CACHE = {}
            _CACHE_LOCK = threading.Lock()

            def worker(key):
                _CACHE[key] = 1
                return _CACHE[key]
            """,
            select=["RL008"],
        )
        assert diagnostics == []

    def test_unguarded_lazy_global_init_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            _TABLE = None
            _TABLE_LOCK = threading.Lock()

            def lookup(key):
                global _TABLE
                if _TABLE is None:
                    _TABLE = {}
                return _TABLE.get(key)

            def fan_out(executor):
                executor.submit(lookup)
            """,
            select=["RL008"],
        )
        assert rule_names(diagnostics) == ["RL008"]

    def test_double_checked_lazy_init_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            _TABLE = None
            _TABLE_LOCK = threading.Lock()

            def lookup(key):
                global _TABLE
                if _TABLE is None:
                    with _TABLE_LOCK:
                        if _TABLE is None:
                            _TABLE = {}
                return _TABLE.get(key)

            def fan_out(executor):
                executor.submit(lookup)
            """,
            select=["RL008"],
        )
        assert diagnostics == []

    def test_shared_instance_unguarded_method_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value

            REGISTRY = Registry()

            def worker(key):
                REGISTRY.put(key, 1)

            def launch():
                threading.Thread(target=worker).start()
            """,
            select=["RL008"],
        )
        assert rule_names(diagnostics) == ["RL008"]

    def test_shared_instance_guarded_method_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

            REGISTRY = Registry()

            def worker(key):
                REGISTRY.put(key, 1)

            def launch():
                threading.Thread(target=worker).start()
            """,
            select=["RL008"],
        )
        assert diagnostics == []


class TestHotPathAllocation:
    """RL009: no (B, L)-scale float materialization on packed paths."""

    def test_dense_float_allocation_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def packed_step(words):
                scratch = np.zeros((64, 1024))
                return scratch
            """,
            select=["RL009"],
        )
        assert rule_names(diagnostics) == ["RL009"]

    def test_integer_allocation_passes(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def packed_step(words):
                scratch = np.zeros((64, 1024), dtype=np.uint64)
                return scratch
            """,
            select=["RL009"],
        )
        assert diagnostics == []

    def test_astype_float_on_unpacked_bits_flagged(self, tmp_path):
        # The violation sits in a helper only *reachable* from the
        # packed entry point — the call graph carries the taint.
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def _widen(words):
                bits = unpack_bits(words)
                return bits.astype(np.float64)

            def packed_run(words):
                return _widen(words)
            """,
            select=["RL009"],
        )
        assert rule_names(diagnostics) == ["RL009"]

    def test_per_clock_loop_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def packed_scan(stream_length):
                total = 0
                for clock in range(stream_length):
                    total += clock
                return total
            """,
            select=["RL009"],
        )
        assert rule_names(diagnostics) == ["RL009"]

    def test_unreachable_function_not_flagged(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def dense_reference(words):
                return np.zeros((64, 1024))
            """,
            select=["RL009"],
        )
        assert diagnostics == []

    def test_pragma_suppresses_intentional_site(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def packed_step(words):
                scratch = np.zeros((64, 1024))  # repro-lint: disable=RL009
                return scratch
            """,
            select=["RL009"],
        )
        assert diagnostics == []


class TestCLIFormats:
    """``--format json`` and the ``--graph`` debug dumps."""

    def test_json_report_on_violation(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main(["--format", "json", str(path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["tool"] == "repro-lint"
        assert document["clean"] is False
        assert document["files"] == 1
        assert document["issues"][0]["rule"] == "RL006"
        assert document["issues"][0]["path"] == str(path)
        assert "RL007" in document["rules"]

    def test_json_report_on_clean_file(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n")
        assert main(["--format", "json", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is True
        assert document["issues"] == []

    def test_graph_cfg_dump(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(x):\n    if x:\n        return 1\n    return 2\n")
        assert main(["--graph", "cfg", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cfg " in out
        assert "<entry>" in out and "<exit>" in out

    def test_graph_calls_dump(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def a():\n    return b()\n\ndef b():\n    return 1\n")
        assert main(["--graph", "calls", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mod.a" in out and "mod.b" in out

"""Cross-module property-based tests (hypothesis).

The invariants here span module boundaries — physical conservation laws,
design-method consistency, model-vs-model agreement — complementing the
per-module property tests living next to each unit suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.design import mrr_first_design, mzi_first_design
from repro.core.transmission import TransmissionModel
from repro.photonics.mzi import MZIModulator
from repro.photonics.ring import RingParameters
from repro.simulation.noise import effective_probability_after_flips
from repro.stochastic import BernsteinPolynomial

spacings = st.floats(min_value=0.4, max_value=1.5)
orders = st.integers(min_value=1, max_value=5)
unit = st.floats(min_value=0.0, max_value=1.0)


class TestPhysicalInvariants:
    @given(
        r1=st.floats(min_value=0.7, max_value=0.999),
        r2=st.floats(min_value=0.7, max_value=0.999),
        a=st.floats(min_value=0.9, max_value=1.0, exclude_min=True),
        detune=st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_ring_passivity(self, r1, r2, a, detune):
        """No passive ring may emit more power than it receives, at any
        detuning, on the sum of both ports."""
        ring = RingParameters(r1=r1, r2=r2, a=a, fsr_nm=20.0)
        through = float(ring.through(1550.0 + detune, 1550.0))
        drop = float(ring.drop(1550.0 + detune, 1550.0))
        assert through + drop <= 1.0 + 1e-9

    @given(order=orders, spacing=spacings)
    @settings(max_examples=12, deadline=None)
    def test_transmissions_are_probabilities(self, order, spacing):
        design = mrr_first_design(
            order=order, wl_spacing_nm=spacing, probe_power_mw=1.0
        )
        model = TransmissionModel(design.params)
        table = model.received_power_table_mw()
        # 1 mW per probe channel: each pattern/level receives at most
        # the total injected power and never a negative amount.
        assert np.all(table >= 0.0)
        assert np.all(table <= (order + 1) * 1.0 + 1e-9)

    @given(order=orders, spacing=spacings)
    @settings(max_examples=10, deadline=None)
    def test_eye_bounded_by_drop_peak(self, order, spacing):
        design = mrr_first_design(
            order=order, wl_spacing_nm=spacing, probe_power_mw=1.0
        )
        eye = repro.worst_case_eye(design.params)
        assert eye.opening <= design.params.ring_profile.filter.drop_peak


class TestDesignMethodConsistency:
    @given(order=orders, spacing=spacings)
    @settings(max_examples=10, deadline=None)
    def test_mrr_first_then_mzi_first_closes_the_loop(self, order, spacing):
        """Feeding MRR-first's outputs into MZI-first must reproduce the
        same wavelength grid — the two methods are inverse views of the
        same Eq. 7 constraint."""
        mrr = mrr_first_design(
            order=order, wl_spacing_nm=spacing, probe_power_mw=1.0
        )
        mzi = mzi_first_design(
            order=order,
            mzi=mrr.params.mzi,
            pump_power_mw=mrr.pump_power_mw,
            lambda_ref_nm=mrr.params.lambda_ref_nm,
            probe_power_mw=1.0,
        )
        np.testing.assert_allclose(
            mzi.params.grid.wavelengths_nm,
            mrr.params.grid.wavelengths_nm,
            atol=1e-6,
        )

    @given(order=orders, spacing=spacings)
    @settings(max_examples=10, deadline=None)
    def test_levels_always_on_channels(self, order, spacing):
        design = mrr_first_design(
            order=order, wl_spacing_nm=spacing, probe_power_mw=1.0
        )
        model = TransmissionModel(design.params)
        np.testing.assert_allclose(
            model.tuning_errors_nm(), 0.0, atol=1e-6
        )

    @given(
        il=st.floats(min_value=3.0, max_value=7.0),
        er=st.floats(min_value=4.0, max_value=8.0),
        order=orders,
    )
    @settings(max_examples=15, deadline=None)
    def test_mzi_first_partitions_swing_exactly(self, il, er, order):
        mzi = MZIModulator(insertion_loss_db=il, extinction_ratio_db=er)
        design = mzi_first_design(
            order=order, mzi=mzi, pump_power_mw=600.0, probe_power_mw=1.0
        )
        grid = design.params.grid
        swing = float(design.params.ote.shift_nm(600.0 * mzi.il_fraction))
        assert grid.guard_nm + order * grid.spacing_nm == pytest.approx(
            swing, rel=1e-9
        )


class TestModelAgreement:
    @given(x=unit, ber=st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=30)
    def test_flip_bias_formula_is_self_consistent(self, x, ber):
        """The analytical flip bias must stay within [0,1] and be exact
        at the fixed point p = 1/2."""
        p = effective_probability_after_flips(x, ber)
        assert 0.0 <= p <= 1.0
        assert effective_probability_after_flips(0.5, ber) == pytest.approx(0.5)

    @given(
        coefficients=st.lists(unit, min_size=2, max_size=6),
        x=unit,
    )
    @settings(max_examples=20, deadline=None)
    def test_bernstein_value_within_coefficient_hull(self, coefficients, x):
        """Eq. 1 is a convex combination: B(x) always lies inside the
        coefficient range — the reason SC hardware can evaluate it with
        probabilities."""
        poly = BernsteinPolynomial(coefficients)
        value = poly(x)
        assert min(coefficients) - 1e-9 <= value <= max(coefficients) + 1e-9

    @given(ber=st.floats(min_value=1e-9, max_value=0.4))
    @settings(max_examples=30)
    def test_probe_power_scales_with_required_snr(self, ber):
        """Probe sizing is linear in the Eq. 9 SNR requirement."""
        params = repro.paper_section5a_parameters()
        probe = repro.minimum_probe_power_mw(params, target_ber=ber)
        reference = repro.minimum_probe_power_mw(params, target_ber=1e-6)
        expected = (
            repro.required_snr_for_ber(ber)
            / repro.required_snr_for_ber(1e-6)
        )
        assert probe / reference == pytest.approx(expected, rel=1e-9)

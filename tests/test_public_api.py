"""Tests for the top-level public API surface."""

import importlib
from pathlib import Path

import pytest

import repro
from repro.tools.lint import check_api_surface

PACKAGE_DIR = Path(repro.__file__).resolve().parent


class TestLazyAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_design_method_reachable(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        assert design.pump_power_mw == pytest.approx(591.8, abs=0.5)

    def test_circuit_workflow(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        circuit = repro.OpticalStochasticCircuit.from_design(
            design, repro.BernsteinPolynomial([0.25, 0.625, 0.375])
        )
        assert circuit.link_budget().bands_separated

    def test_constants_exposed(self):
        assert repro.PAPER_OPTIMAL_WL_SPACING_NM == pytest.approx(0.165)
        assert repro.PAPER_HEADLINE_ENERGY_PJ_PER_BIT == pytest.approx(20.1)

    def test_errors_exposed(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DesignInfeasibleError, repro.ReproError)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_api_names_all_resolve(self):
        from repro import _api

        for name in _api.__all__:
            assert getattr(repro, name) is getattr(_api, name)


class TestPublicAPIContract:
    """The ``__all__``/``_api``/``__getattr__`` surfaces must agree."""

    def test_static_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_surfaces_consistent(self):
        # Duplicate-free __all__ lists, no dangling _api names, static
        # and lazy surfaces disjoint, lazy __getattr__ present, removed
        # wrappers truly gone: all delegated to the RL002 checker so the
        # test and `repro-lint` can never drift apart.
        diagnostics = check_api_surface(PACKAGE_DIR)
        assert diagnostics == [], "\n".join(d.format() for d in diagnostics)

    def test_session_api_exported(self):
        from repro import _api

        for name in ("EvalSpec", "Evaluator", "BatchServer", "ServingStats"):
            assert name in _api.__all__
            assert getattr(repro, name) is getattr(_api, name)

    def test_private_names_not_served(self):
        with pytest.raises(AttributeError):
            repro._private_thing

    def test_deprecated_wrappers_registry(self):
        # The registry survives the removal as the migration record:
        # every entry names a real session replacement and its note
        # records the full deprecated-then-removed history (the policy:
        # wrappers survive at least two PRs past deprecation before
        # removal — both were deprecated in PR 3 and removed in PR 6).
        from repro.session import DEPRECATED_WRAPPERS

        assert DEPRECATED_WRAPPERS  # the registry is not empty
        for entry in DEPRECATED_WRAPPERS.values():
            assert entry["removed"] is True
            assert "Evaluator" in entry["replacement"]
            note = entry["removal_note"]
            assert "deprecated in PR" in note
            assert "removed in PR" in note

    def test_removed_wrappers_are_gone(self):
        # Removal means gone at *runtime* too: the legacy names no
        # longer resolve from their imported modules or the lazy top
        # level.  (The static side — absent from _api bindings and the
        # origin module's source — is covered by check_api_surface in
        # test_surfaces_consistent.)
        from repro.session import DEPRECATED_WRAPPERS

        for dotted in DEPRECATED_WRAPPERS:
            module_name, _, attribute = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            assert not hasattr(module, attribute)
            with pytest.raises(AttributeError):
                getattr(repro, attribute)

    def test_wrapper_replacements_are_live(self):
        # The documented replacements actually work where the wrappers
        # used to: session-bound apply_kernel and the cached evaluate.
        circuit = repro.OpticalStochasticCircuit(
            repro.paper_section5a_parameters(),
            repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        from repro.stochastic.image import linear_ramp

        session = repro.Evaluator(
            circuit, repro.EvalSpec(length=64, base_seed=3)
        )
        pixels = session.apply_kernel(linear_ramp(8), levels=8)
        assert pixels.shape == (8, 8)

        cache = repro.EvaluationCache()
        cached_session = repro.Evaluator(
            circuit,
            repro.EvalSpec(length=64, base_seed=3),
            repro.RuntimeConfig(cache=cache),
        )
        first = cached_session.evaluate([0.5])
        assert cached_session.evaluate([0.5]) is first
        assert cache.hits == 1

"""Tests for the top-level public API surface."""

import pytest

import repro


class TestLazyAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_design_method_reachable(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        assert design.pump_power_mw == pytest.approx(591.8, abs=0.5)

    def test_circuit_workflow(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        circuit = repro.OpticalStochasticCircuit.from_design(
            design, repro.BernsteinPolynomial([0.25, 0.625, 0.375])
        )
        assert circuit.link_budget().bands_separated

    def test_constants_exposed(self):
        assert repro.PAPER_OPTIMAL_WL_SPACING_NM == pytest.approx(0.165)
        assert repro.PAPER_HEADLINE_ENERGY_PJ_PER_BIT == pytest.approx(20.1)

    def test_errors_exposed(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DesignInfeasibleError, repro.ReproError)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_api_names_all_resolve(self):
        from repro import _api

        for name in _api.__all__:
            assert getattr(repro, name) is getattr(_api, name)

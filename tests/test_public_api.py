"""Tests for the top-level public API surface."""

import importlib

import numpy as np
import pytest

import repro


class TestLazyAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_design_method_reachable(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        assert design.pump_power_mw == pytest.approx(591.8, abs=0.5)

    def test_circuit_workflow(self):
        design = repro.mrr_first_design(
            order=2, wl_spacing_nm=1.0, probe_power_mw=1.0
        )
        circuit = repro.OpticalStochasticCircuit.from_design(
            design, repro.BernsteinPolynomial([0.25, 0.625, 0.375])
        )
        assert circuit.link_budget().bands_separated

    def test_constants_exposed(self):
        assert repro.PAPER_OPTIMAL_WL_SPACING_NM == pytest.approx(0.165)
        assert repro.PAPER_HEADLINE_ENERGY_PJ_PER_BIT == pytest.approx(20.1)

    def test_errors_exposed(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DesignInfeasibleError, repro.ReproError)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_api_names_all_resolve(self):
        from repro import _api

        for name in _api.__all__:
            assert getattr(repro, name) is getattr(_api, name)


class TestPublicAPIContract:
    """The ``__all__``/``_api``/``__getattr__`` surfaces must agree."""

    def test_static_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_api_all_has_no_duplicates(self):
        from repro import _api

        assert len(_api.__all__) == len(set(_api.__all__))

    def test_api_all_matches_module_bindings(self):
        # Every advertised name is actually bound in _api (and therefore
        # reachable through the lazy __getattr__), and nothing in
        # __all__ is a dangling string.
        from repro import _api

        missing = [n for n in _api.__all__ if not hasattr(_api, n)]
        assert missing == []

    def test_static_and_lazy_surfaces_disjoint(self):
        # A name served by both the static __init__ __all__ and _api
        # would resolve inconsistently depending on import order.
        from repro import _api

        overlap = set(repro.__all__) & set(_api.__all__)
        assert overlap == set()

    def test_session_api_exported(self):
        from repro import _api

        for name in ("EvalSpec", "Evaluator", "BatchServer", "ServingStats"):
            assert name in _api.__all__
            assert getattr(repro, name) is getattr(_api, name)

    def test_private_names_not_served(self):
        with pytest.raises(AttributeError):
            repro._private_thing

    def test_deprecated_wrappers_registry(self):
        # The registry survives the removal as the migration record:
        # every entry names a real session replacement and its note
        # records the full deprecated-then-removed history (the policy:
        # wrappers survive at least two PRs past deprecation before
        # removal — both were deprecated in PR 3 and removed in PR 6).
        from repro.session import DEPRECATED_WRAPPERS

        assert DEPRECATED_WRAPPERS  # the registry is not empty
        for entry in DEPRECATED_WRAPPERS.values():
            assert entry["removed"] is True
            assert "Evaluator" in entry["replacement"]
            note = entry["removal_note"]
            assert "deprecated in PR" in note
            assert "removed in PR" in note

    def test_removed_wrappers_are_gone(self):
        # Removal means gone: the legacy names no longer resolve from
        # their modules, the aggregated API, or the lazy top level.
        from repro import _api
        from repro.session import DEPRECATED_WRAPPERS

        for dotted in DEPRECATED_WRAPPERS:
            module_name, _, attribute = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            assert not hasattr(module, attribute)
            assert attribute not in _api.__all__
            with pytest.raises(AttributeError):
                getattr(repro, attribute)

    def test_wrapper_replacements_are_live(self):
        # The documented replacements actually work where the wrappers
        # used to: session-bound apply_kernel and the cached evaluate.
        circuit = repro.OpticalStochasticCircuit(
            repro.paper_section5a_parameters(),
            repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
        from repro.stochastic.image import linear_ramp

        session = repro.Evaluator(
            circuit, repro.EvalSpec(length=64, base_seed=3)
        )
        pixels = session.apply_kernel(linear_ramp(8), levels=8)
        assert pixels.shape == (8, 8)

        cache = repro.EvaluationCache()
        cached_session = repro.Evaluator(
            circuit,
            repro.EvalSpec(length=64, base_seed=3),
            repro.RuntimeConfig(cache=cache),
        )
        first = cached_session.evaluate([0.5])
        assert cached_session.evaluate([0.5]) is first
        assert cache.hits == 1

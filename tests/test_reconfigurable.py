"""Tests for the reconfigurable multi-order circuit (Sections V-C/VI)."""

import pytest

from repro.core.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.stochastic import BernsteinPolynomial


@pytest.fixture(scope="module")
def hardware() -> ReconfigurableCircuit:
    # Fix the spacing explicitly to keep the fixture fast; the optimum
    # search itself is covered in test_energy.py.
    return ReconfigurableCircuit(max_order=4, wl_spacing_nm=0.165)


class TestConfiguration:
    def test_supported_orders(self, hardware):
        assert list(hardware.supported_orders) == [1, 2, 3, 4]

    def test_design_reuses_grid_spacing(self, hardware):
        for order in (1, 2, 3, 4):
            design = hardware.design_for(order)
            assert design.wl_spacing_nm == pytest.approx(0.165)
            assert design.order == order

    def test_designs_cached(self, hardware):
        assert hardware.design_for(2) is hardware.design_for(2)

    def test_pump_grows_with_order(self, hardware):
        pumps = [hardware.design_for(n).pump_power_mw for n in (1, 2, 3, 4)]
        assert pumps == sorted(pumps)

    def test_order_validation(self, hardware):
        with pytest.raises(ConfigurationError):
            hardware.design_for(5)
        with pytest.raises(ConfigurationError):
            hardware.design_for(0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ReconfigurableCircuit(max_order=0)
        with pytest.raises(ConfigurationError):
            ReconfigurableCircuit(max_order=2, wl_spacing_nm=-1.0)


class TestProgramming:
    def test_circuit_for_polynomial(self, hardware):
        program = BernsteinPolynomial([0.2, 0.5, 0.8])
        circuit = hardware.circuit_for(program)
        assert circuit.params.order == 2
        assert circuit.polynomial is program

    def test_energy_table(self, hardware):
        table = hardware.energy_table_pj([2, 4])
        assert table["order"].tolist() == [2, 4]
        assert table["total_pj"][1] > table["total_pj"][0]

    def test_energy_close_to_headline_for_order_2(self, hardware):
        assert hardware.energy_per_bit_pj(2) == pytest.approx(20.1, abs=0.6)


class TestOrderIndependence:
    def test_optima_agree_across_orders(self, hardware):
        result = hardware.verify_order_independence([2, 4], tolerance_nm=0.02)
        assert result["within_tolerance"]
        assert result["spread_nm"] < 0.02

    def test_empty_orders_rejected(self, hardware):
        with pytest.raises(ConfigurationError):
            hardware.verify_order_independence([])

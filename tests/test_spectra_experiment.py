"""Tests for the Fig. 5 spectral-curve experiment."""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("fig5spec")


def _panel(result, label):
    rows = [r for r in result.rows if r["panel"] == label]
    wl = np.array([r["wavelength_nm"] for r in rows])
    return rows, wl


class TestFig5Spectra:
    def test_both_panels_sampled(self, result):
        panels = {r["panel"] for r in result.rows}
        assert panels == {"a", "b"}

    def test_panel_a_filter_at_lambda2(self, result):
        rows, wl = _panel(result, "a")
        filt = np.array([r["filter"] for r in rows])
        assert wl[filt.argmax()] == pytest.approx(1550.0, abs=0.05)

    def test_panel_b_filter_at_lambda0(self, result):
        rows, wl = _panel(result, "b")
        filt = np.array([r["filter"] for r in rows])
        assert wl[filt.argmax()] == pytest.approx(1548.0, abs=0.05)

    def test_panel_a_mrr1_detuned(self, result):
        # z1 = 1 in panel (a): MRR1's dip sits 0.1 nm below lambda_1.
        rows, wl = _panel(result, "a")
        mrr1 = np.array([r["MRR1"] for r in rows])
        assert wl[mrr1.argmin()] == pytest.approx(1548.9, abs=0.05)

    def test_panel_b_mrr0_detuned_mrr2_on_resonance(self, result):
        rows, wl = _panel(result, "b")
        mrr0 = np.array([r["MRR0"] for r in rows])
        mrr2 = np.array([r["MRR2"] for r in rows])
        assert wl[mrr0.argmin()] == pytest.approx(1547.9, abs=0.05)
        assert wl[mrr2.argmin()] == pytest.approx(1550.0, abs=0.05)

    def test_all_curves_are_transmissions(self, result):
        for row in result.rows:
            for key in ("MRR0", "MRR1", "MRR2", "filter"):
                assert -1e-9 <= row[key] <= 1.0 + 1e-9

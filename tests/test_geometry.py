"""Tests for ring geometry and the phase/FSR relationship."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics import RingGeometry
from repro.photonics.ring import round_trip_phase


class TestRingGeometry:
    def test_round_trip_length(self):
        geometry = RingGeometry(radius_um=10.0)
        assert geometry.round_trip_length_um == pytest.approx(20 * math.pi)

    def test_fsr_formula(self):
        geometry = RingGeometry(radius_um=10.0, group_index=4.3)
        length_nm = geometry.round_trip_length_um * 1e3
        assert geometry.fsr_nm(1550.0) == pytest.approx(
            1550.0**2 / (4.3 * length_nm)
        )

    def test_for_fsr_roundtrip(self):
        geometry = RingGeometry.for_fsr(fsr_nm=20.0, wavelength_nm=1550.0)
        assert geometry.fsr_nm(1550.0) == pytest.approx(20.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RingGeometry(radius_um=-1.0)
        with pytest.raises(ConfigurationError):
            RingGeometry(radius_um=5.0, effective_index=4.0, group_index=2.0)

    def test_resonance_order_is_integer_phase(self):
        geometry = RingGeometry(radius_um=10.0)
        resonances = geometry.resonance_wavelengths_nm(1540.0, 1560.0)
        for res in resonances:
            phase = float(geometry.round_trip_phase(res))
            assert phase / (2 * math.pi) == pytest.approx(
                round(phase / (2 * math.pi)), abs=1e-6
            )

    def test_resonance_spacing_matches_fsr(self):
        geometry = RingGeometry(radius_um=10.0)
        resonances = geometry.resonance_wavelengths_nm(1530.0, 1570.0)
        spacings = np.diff(resonances)
        fsr = geometry.fsr_nm(float(resonances.mean()))
        # The FSR drifts slowly with wavelength across the band; allow 2 %.
        np.testing.assert_allclose(spacings, fsr, rtol=2e-2)

    def test_detuning_phase_approximation(self):
        """The simplified phase 2*pi*(l - l_res)/FSR matches the exact
        dispersive phase to first order near a resonance."""
        geometry = RingGeometry(radius_um=10.0)
        resonances = geometry.resonance_wavelengths_nm(1545.0, 1555.0)
        res = float(resonances[0])
        fsr = geometry.fsr_nm(res)
        for detuning in (-0.2, -0.05, 0.05, 0.2):
            exact = float(geometry.round_trip_phase(res + detuning))
            exact_mod = (exact + math.pi) % (2 * math.pi) - math.pi
            approx = float(round_trip_phase(res + detuning, res, fsr))
            # The detuning-relative phase decreases with wavelength in the
            # exact model; compare magnitudes of the detuning phase.
            assert abs(exact_mod) == pytest.approx(abs(approx), rel=0.05)

    def test_round_trip_phase_rejects_bad_wavelength(self):
        geometry = RingGeometry(radius_um=10.0)
        with pytest.raises(ConfigurationError):
            geometry.round_trip_phase(-5.0)

    def test_resonance_window_validation(self):
        geometry = RingGeometry(radius_um=10.0)
        with pytest.raises(ConfigurationError):
            geometry.resonance_wavelengths_nm(1560.0, 1550.0)

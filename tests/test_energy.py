"""Tests for the laser energy model (Section V-C, Fig. 7)."""

import numpy as np
import pytest

from repro.core.energy import (
    energy_breakdown,
    energy_vs_spacing,
    optimal_wl_spacing_nm,
)
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError


class TestEnergyBreakdown:
    def test_pump_energy_formula(self):
        params = paper_section5a_parameters()
        breakdown = energy_breakdown(params)
        expected = 591.8e-3 * 26e-12 / 0.2
        assert breakdown.pump_energy_j == pytest.approx(expected, rel=1e-3)

    def test_probe_energy_formula(self):
        params = paper_section5a_parameters(probe_power_mw=1.0)
        breakdown = energy_breakdown(params)
        expected = 3 * 1.0e-3 * 1e-9 / 0.2  # (n+1) x P x T_bit / eta
        assert breakdown.probe_energy_j == pytest.approx(expected, rel=1e-9)
        assert breakdown.probe_laser_count == 3

    def test_total_and_units(self):
        breakdown = energy_breakdown(paper_section5a_parameters())
        assert breakdown.total_energy_j == pytest.approx(
            breakdown.pump_energy_j + breakdown.probe_energy_j
        )
        assert breakdown.total_energy_pj == pytest.approx(
            breakdown.total_energy_j * 1e12
        )

    def test_dominant_label(self):
        breakdown = energy_breakdown(paper_section5a_parameters())
        assert breakdown.dominant in ("pump", "probe")

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            energy_breakdown(42)


class TestFig7aShape:
    """The Fig. 7(a) structure: opposing trends and an interior optimum."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return energy_vs_spacing(2, np.linspace(0.11, 0.3, 20))

    def test_pump_increases_with_spacing(self, sweep):
        pump = sweep["pump_pj"]
        assert np.all(np.diff(pump[np.isfinite(pump)]) > 0)

    def test_probe_decreases_with_spacing(self, sweep):
        probe = sweep["probe_pj"][np.isfinite(sweep["probe_pj"])]
        assert np.all(np.diff(probe) < 0)

    def test_interior_optimum(self, sweep):
        total = sweep["total_pj"]
        finite = np.isfinite(total)
        index = int(np.nanargmin(np.where(finite, total, np.nan)))
        assert 0 < index < len(total) - 1

    def test_curves_cross_once(self, sweep):
        # Paper: probe lasers dominate at small spacings (crosstalk
        # compensation), pump at large ones (larger filter swing).  In
        # our calibration the curves cross slightly below the optimum;
        # the qualitative crossover is the invariant tested here.
        probe, pump = sweep["probe_pj"], sweep["pump_pj"]
        finite = np.isfinite(probe) & np.isfinite(pump)
        dominance = probe[finite] > pump[finite]
        assert dominance[0]  # probe dominates at the smallest open spacing
        assert not dominance[-1]  # pump dominates at the largest
        # Single sign change: probe/pump dominance flips exactly once.
        assert int(np.sum(np.abs(np.diff(dominance.astype(int))))) == 1


class TestPaperGoldenEnergies:
    def test_optimal_spacing_near_paper_value(self):
        # Fig. 7(a): optimum at ~0.165 nm (calibrated; tolerance 0.01).
        opt = optimal_wl_spacing_nm(2)
        assert opt == pytest.approx(0.165, abs=0.01)

    def test_headline_energy(self):
        # Sections I/VI: 20.1 pJ per computed bit at 1 GHz, order 2.
        opt = optimal_wl_spacing_nm(2)
        total = float(energy_vs_spacing(2, [opt])["total_pj"][0])
        assert total == pytest.approx(20.1, abs=0.5)

    def test_optimum_independent_of_order(self):
        # The paper's key observation (Fig. 7(a)).
        optima = [optimal_wl_spacing_nm(n) for n in (2, 4, 6)]
        assert max(optima) - min(optima) < 0.02

    def test_fig7b_energy_saving(self):
        # Fig. 7(b): optimal spacing saves ~76.6 % vs 1 nm spacing.
        n = 12
        at_1nm = float(energy_vs_spacing(n, [1.0])["total_pj"][0])
        opt = optimal_wl_spacing_nm(n)
        at_opt = float(energy_vs_spacing(n, [opt])["total_pj"][0])
        saving = 1.0 - at_opt / at_1nm
        assert saving == pytest.approx(0.766, abs=0.03)

    def test_fig7b_axis_scale(self):
        # Fig. 7(b) tops out near 600 pJ for n=16 at 1 nm spacing.
        total = float(energy_vs_spacing(16, [1.0])["total_pj"][0])
        assert total == pytest.approx(600.0, rel=0.05)


class TestInfeasibleSpacings:
    def test_closed_eye_reported_as_inf(self):
        result = energy_vs_spacing(2, [0.05])
        assert np.isinf(result["probe_pj"][0])

    def test_empty_spacings_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_vs_spacing(2, [])

    def test_optimal_spacing_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_wl_spacing_nm(2, lower_nm=0.3, upper_nm=0.1)

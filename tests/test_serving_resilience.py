"""Deterministic tests for the serving tier's failure paths.

Every scenario here — retry backoff, circuit-breaker transitions,
deadline expiry, degradation-rung accounting — runs under a
:class:`~repro.serving.ManualClock` and the seeded retry jitter, so the
assertions are *exact*: counter values, clock positions and served bits
are all pure functions of the test script.  No ``time.sleep``, no
wall-clock tolerance bands (see CONTRIBUTING, "Testing resilience code
with a seeded clock").
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
)
from repro.serving import (
    BatchServer,
    CircuitBreaker,
    DegradationController,
    DegradationLadder,
    HistogramSnapshot,
    ManualClock,
    RetryPolicy,
    measure_rung_rmse,
)
from repro.session import EvalSpec, Evaluator
from repro.stochastic.bernstein import BernsteinPolynomial


@pytest.fixture(scope="module")
def circuit():
    return OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


@pytest.fixture(scope="module")
def evaluator(circuit):
    return Evaluator(circuit, EvalSpec(length=256, noisy=False, base_seed=7))


def flaky_evaluator(evaluator, failures, error=None):
    """A derived session whose first *failures* evaluations raise."""
    session = Evaluator(evaluator.circuit, evaluator.spec, evaluator.runtime)
    real_evaluate = session.evaluate
    calls = {"total": 0}

    def evaluate(xs):
        calls["total"] += 1
        if calls["total"] <= failures:
            raise error or RuntimeError("transient engine glitch")
        return real_evaluate(xs)

    session.evaluate = evaluate
    return session, calls


def gated_evaluator(evaluator):
    """A derived session whose ``evaluate`` blocks until released."""
    session = Evaluator(evaluator.circuit, evaluator.spec, evaluator.runtime)
    entered = threading.Event()
    release = threading.Event()
    real_evaluate = session.evaluate

    def gated(xs):
        entered.set()
        if not release.wait(timeout=10.0):
            raise RuntimeError("test gate was never released")
        return real_evaluate(xs)

    session.evaluate = gated
    return session, entered, release


class TestManualClock:
    def test_advance_and_sleep_move_time_deterministically(self):
        clock = ManualClock()
        assert clock.time() == 0.0
        clock.advance(1.5)
        assert clock.time() == 1.5

        async def scenario():
            await clock.sleep(0.25)
            return clock.time()

        assert asyncio.run(scenario()) == 1.75

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-1.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_delays_are_seeded_and_stable(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.01, multiplier=2.0, jitter=0.25
        )
        first = policy.delays()
        assert first == policy.delays()  # same seed, same schedule
        assert len(first) == 3
        for index, delay in enumerate(first):
            base = 0.01 * 2.0**index
            assert base * 0.75 <= delay <= base * 1.25
        # A different seed gives a different (but equally stable) jitter.
        other = RetryPolicy(
            attempts=4, base_delay_s=0.01, multiplier=2.0, jitter=0.25,
            jitter_seed=1,
        ).delays()
        assert other != first

    def test_no_backoff_for_single_attempt(self):
        assert RetryPolicy(attempts=1).delays() == ()

    def test_transience_classification(self):
        assert RetryPolicy.is_transient(RuntimeError("glitch"))
        assert not RetryPolicy.is_transient(ConfigurationError("caller bug"))
        assert not RetryPolicy.is_transient(KeyboardInterrupt())


class TestCircuitBreakerUnit:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_time_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)  # resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == "closed"
        breaker.record_failure(0.5)
        assert breaker.state == "open"
        assert breaker.times_opened == 1

    def test_half_open_probe_cycle(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=2.0)
        breaker.record_failure(0.0)
        assert breaker.state == "open"
        assert not breaker.allow(1.9)  # still inside the recovery window
        assert breaker.allow(2.0)  # the probe
        assert breaker.state == "half_open"
        breaker.record_success(2.1)
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_time_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)  # the probe fails: reopen immediately
        assert breaker.state == "open"
        assert breaker.times_opened == 2
        assert not breaker.allow(2.5)
        assert breaker.allow(2.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(recovery_time_s=0.0)


class TestRetryServing:
    def test_retry_then_succeed_is_exact(self, evaluator):
        session, calls = flaky_evaluator(evaluator, failures=2)
        policy = RetryPolicy(attempts=3, base_delay_s=0.01)
        clock = ManualClock()

        async def scenario():
            async with BatchServer(
                session, max_batch_delay_s=0.0, retry=policy, clock=clock
            ) as server:
                value = await server.submit(0.5)
                return value, server.metrics(), clock.time()

        value, metrics, elapsed = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )
        assert calls["total"] == 3
        assert metrics.retried == 2
        assert metrics.failed == 0
        assert metrics.served == 1
        # The clock advanced by exactly the seeded backoff schedule.
        assert elapsed == pytest.approx(sum(policy.delays()[:2]))

    def test_retry_exhaustion_fails_the_batch(self, evaluator):
        session, calls = flaky_evaluator(evaluator, failures=10)
        policy = RetryPolicy(attempts=2, base_delay_s=0.01)

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                retry=policy,
                clock=ManualClock(),
            ) as server:
                with pytest.raises(RuntimeError, match="glitch"):
                    await server.submit(0.5)
                return server.metrics()

        metrics = asyncio.run(scenario())
        assert calls["total"] == 2
        assert metrics.retried == 1
        assert metrics.failed == 1
        assert metrics.served == 0

    def test_configuration_errors_are_not_retried(self, evaluator):
        session, calls = flaky_evaluator(
            evaluator, failures=10, error=ConfigurationError("caller bug")
        )

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                retry=RetryPolicy(attempts=5),
                clock=ManualClock(),
            ) as server:
                with pytest.raises(ConfigurationError, match="caller bug"):
                    await server.submit(0.5)
                return server.metrics()

        metrics = asyncio.run(scenario())
        assert calls["total"] == 1  # no retry for non-transient failures
        assert metrics.retried == 0
        assert metrics.failed == 1


class TestBreakerServing:
    def test_trip_fast_fail_probe_and_recovery(self, evaluator):
        session, calls = flaky_evaluator(evaluator, failures=2)
        breaker = CircuitBreaker(failure_threshold=2, recovery_time_s=1.0)
        clock = ManualClock()

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                breaker=breaker,
                clock=clock,
            ) as server:
                # Two consecutive batch failures trip the breaker.
                for _ in range(2):
                    with pytest.raises(RuntimeError):
                        await server.submit(0.5)
                assert server.metrics().breaker_state == "open"
                # While open, requests fail fast: no engine call burned.
                with pytest.raises(CircuitOpenError):
                    await server.submit(0.5)
                engine_calls_while_open = calls["total"]
                # After the recovery window the probe goes through; the
                # engine is healthy again, so the breaker closes.
                clock.advance(1.0)
                value = await server.submit(0.5)
                return (
                    value,
                    engine_calls_while_open,
                    server.metrics(),
                )

        value, engine_calls_while_open, metrics = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )
        assert engine_calls_while_open == 2
        assert calls["total"] == 3
        assert metrics.breaker_state == "closed"
        assert metrics.breaker_rejected == 1
        assert metrics.breaker_opened == 1
        assert metrics.failed == 2
        assert metrics.served == 1

    def test_failed_probe_reopens_the_breaker(self, evaluator):
        session, calls = flaky_evaluator(evaluator, failures=10)
        breaker = CircuitBreaker(failure_threshold=1, recovery_time_s=1.0)
        clock = ManualClock()

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                breaker=breaker,
                clock=clock,
            ) as server:
                with pytest.raises(RuntimeError):
                    await server.submit(0.5)
                clock.advance(1.0)
                with pytest.raises(RuntimeError):  # the probe itself fails
                    await server.submit(0.5)
                return server.metrics()

        metrics = asyncio.run(scenario())
        assert metrics.breaker_state == "open"
        assert metrics.breaker_opened == 2
        assert calls["total"] == 2

    def test_circuit_open_error_is_a_typed_overload(self):
        # Clients backing off on OverloadedError also back off on an
        # open breaker — and both are ServingErrors.
        assert issubclass(CircuitOpenError, OverloadedError)
        assert issubclass(OverloadedError, ServingError)
        assert issubclass(DeadlineExceededError, ServingError)


class TestDeadlines:
    def test_unmeetable_deadline_refused_at_admission(self, evaluator):
        # The evaluator "takes" 0.5 clock seconds per batch; once that
        # is measured, a 0.1 s budget is refused at the door.
        clock = ManualClock()
        session = Evaluator(
            evaluator.circuit, evaluator.spec, evaluator.runtime
        )
        real_evaluate = session.evaluate

        def slow(xs):
            clock.advance(0.5)
            return real_evaluate(xs)

        session.evaluate = slow

        async def scenario():
            async with BatchServer(
                session, max_batch_delay_s=0.0, clock=clock
            ) as server:
                await server.submit(0.5)  # establishes the 0.5 s EWMA
                with pytest.raises(
                    DeadlineExceededError, match="batch service time"
                ):
                    await server.submit(0.5, deadline_s=0.1)
                value = await server.submit(0.5, deadline_s=10.0)
                return value, server.metrics()

        value, metrics = asyncio.run(scenario())
        assert value == pytest.approx(
            float(evaluator.evaluate([0.5]).values[0])
        )
        assert metrics.expired == 1
        assert metrics.served == 2
        assert metrics.admitted == 2

    def test_expired_request_fails_at_batch_formation(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)
        clock = ManualClock()

        async def scenario():
            async with BatchServer(
                session, max_batch_delay_s=0.0, clock=clock
            ) as server:
                inflight = asyncio.create_task(server.submit(0.2))
                await asyncio.to_thread(entered.wait, 10.0)
                # Queued behind the busy engine with a 0.2 s budget ...
                queued = asyncio.create_task(
                    server.submit(0.7, deadline_s=0.2)
                )
                await asyncio.sleep(0)
                # ... which the stalled batch burns entirely.
                clock.advance(0.5)
                release.set()
                await inflight
                with pytest.raises(DeadlineExceededError, match="expired"):
                    await queued
                return server.metrics()

        metrics = asyncio.run(scenario())
        assert metrics.expired == 1
        assert metrics.served == 1
        assert metrics.cancelled == 0

    def test_default_deadline_applies_to_every_submit(self, evaluator):
        clock = ManualClock()
        session = Evaluator(
            evaluator.circuit, evaluator.spec, evaluator.runtime
        )
        real_evaluate = session.evaluate

        def slow(xs):
            clock.advance(1.0)
            return real_evaluate(xs)

        session.evaluate = slow

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                default_deadline_s=0.5,
                clock=clock,
            ) as server:
                await server.submit(0.5)  # EWMA becomes 1.0 > 0.5 default
                with pytest.raises(DeadlineExceededError):
                    await server.submit(0.5)
                return server.metrics()

        metrics = asyncio.run(scenario())
        assert metrics.expired == 1

    def test_invalid_deadline_rejected(self, evaluator):
        async def scenario():
            async with BatchServer(evaluator) as server:
                with pytest.raises(ConfigurationError, match="deadline_s"):
                    await server.submit(0.5, deadline_s=0.0)

        asyncio.run(scenario())


class TestDegradation:
    def test_ladder_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(())
        with pytest.raises(ConfigurationError):
            DegradationLadder((256, 256))
        with pytest.raises(ConfigurationError):
            DegradationLadder((256, 512))
        with pytest.raises(ConfigurationError):
            DegradationLadder((256, 0))
        assert len(DegradationLadder((256, 64, 16))) == 3

    def test_controller_steps_down_and_recovers_hysteretically(self):
        controller = DegradationController(
            DegradationLadder((256, 64, 16)),
            queue_capacity=8,
            high_watermark=0.5,
            low_watermark=0.25,
            patience=2,
            recovery_patience=3,
        )
        assert controller.rung == 0
        # One overloaded observation is not enough (patience=2) ...
        assert controller.observe(8, 0.01) == 0
        assert controller.observe(8, 0.01) == 1  # ... two are
        assert controller.length == 64
        assert controller.observe(8, 0.01) == 1
        assert controller.observe(8, 0.01) == 2
        assert controller.observe(8, 0.01) == 2  # bottom rung: stays
        # Recovery needs recovery_patience consecutive calm steps.
        assert controller.observe(0, 0.01) == 2
        assert controller.observe(0, 0.01) == 2
        assert controller.observe(0, 0.01) == 1
        # The dead band (between watermarks) resets both streaks.
        assert controller.observe(0, 0.01) == 1
        assert controller.observe(3, 0.01) == 1  # mid-band: streak reset
        assert controller.observe(0, 0.01) == 1
        assert controller.observe(0, 0.01) == 1
        assert controller.observe(0, 0.01) == 0

    def test_latency_budget_alone_can_trigger_degradation(self):
        controller = DegradationController(
            DegradationLadder((256, 64)),
            queue_capacity=8,
            patience=2,
            latency_budget_s=0.1,
            ewma_alpha=1.0,
        )
        assert controller.observe(0, 0.5) == 0  # queue empty, but slow
        assert controller.observe(0, 0.5) == 1

    def test_degraded_rungs_serve_exact_shortened_bits(self, evaluator):
        session, entered, release = gated_evaluator(evaluator)
        ladder = DegradationLadder((256, 64))
        controller = DegradationController(
            ladder,
            queue_capacity=4,
            high_watermark=0.5,
            low_watermark=0.25,
            patience=1,
            recovery_patience=10_000,
        )
        xs_queued = (0.2, 0.4, 0.6)

        async def scenario():
            async with BatchServer(
                session,
                max_batch_delay_s=0.0,
                policy="degrade",
                max_queue=4,
                degradation=controller,
                clock=ManualClock(),
            ) as server:
                inflight = asyncio.create_task(server.submit(0.1))
                await asyncio.to_thread(entered.wait, 10.0)
                queued = [
                    asyncio.create_task(server.submit(x)) for x in xs_queued
                ]
                await asyncio.sleep(0)
                release.set()
                first = await inflight
                values = [await task for task in queued]
                return first, values, server.metrics()

        first, values, metrics = asyncio.run(scenario())
        # The first batch went out at full precision ...
        assert first == pytest.approx(
            float(evaluator.evaluate([0.1]).values[0])
        )
        # ... the backlog was served one rung down, bit-identical to a
        # direct evaluation at the rung's length (progressive precision
        # keeps the determinism contract, just at a shorter stream).
        degraded_direct = np.asarray(
            evaluator.with_options(length=64).evaluate(list(xs_queued)).values,
            dtype=float,
        )
        assert np.array_equal(np.asarray(values, dtype=float), degraded_direct)
        assert metrics.current_rung == 1
        assert metrics.degraded_served == 3
        assert metrics.served == 4
        rungs = {rung.rung: rung for rung in metrics.rungs}
        assert rungs[0].length == 256 and rungs[0].served == 1
        assert rungs[1].length == 64 and rungs[1].served == 3
        # Every rung carries its measured accuracy annotation.
        assert rungs[0].rmse is not None and rungs[0].rmse >= 0.0
        assert rungs[1].rmse is not None and rungs[1].rmse > 0.0

    def test_measured_rmse_grows_as_streams_shorten(self, evaluator):
        rmse = measure_rung_rmse(evaluator, (256, 16))
        assert set(rmse) == {0, 1}
        # Progressive precision: a 16-bit stream is strictly less
        # accurate than a 256-bit one on the calibration grid.
        assert rmse[1] > rmse[0] >= 0.0

    def test_degrade_policy_derives_a_default_ladder(self, evaluator):
        server = BatchServer(evaluator, policy="degrade", max_queue=8)
        assert server._ladder is not None
        assert server._ladder.lengths[0] == 256
        assert len(server._ladder.lengths) == 3

    def test_mismatched_ladder_rejected(self, evaluator):
        with pytest.raises(ConfigurationError, match="rung 0"):
            BatchServer(evaluator, ladder=DegradationLadder((512, 64)))


class TestHistogramSnapshot:
    def test_totals_and_max_observed_bound(self):
        snapshot = HistogramSnapshot(
            bounds=(0, 1, 2, 4), counts=(1, 2, 0, 3, 0)
        )
        assert snapshot.total == 6
        assert snapshot.max_observed_bound == 4

    def test_overflow_bucket_reports_unbounded(self):
        snapshot = HistogramSnapshot(bounds=(0, 1), counts=(0, 0, 5))
        assert snapshot.max_observed_bound is None

    def test_empty_histogram(self):
        snapshot = HistogramSnapshot(bounds=(0, 1), counts=(0, 0, 0))
        assert snapshot.total == 0
        assert snapshot.max_observed_bound is None

"""Tests for the WDM channel plan (Eq. 5 and Fig. 4(a) grid)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.photonics import WDMGrid


@pytest.fixture
def paper_grid() -> WDMGrid:
    """Section V-A grid: n=2, 1 nm spacing, lambda_2 = 1550 nm."""
    return WDMGrid(channel_count=3, spacing_nm=1.0, anchor_nm=1550.0, guard_nm=0.1)


class TestPaperGrid:
    def test_wavelengths(self, paper_grid):
        np.testing.assert_allclose(
            paper_grid.wavelengths_nm, [1548.0, 1549.0, 1550.0]
        )

    def test_reference(self, paper_grid):
        assert paper_grid.reference_nm == pytest.approx(1550.1)

    def test_span(self, paper_grid):
        # lambda_ref - lambda_0 = 2.1 nm (the paper's full tuning swing).
        assert paper_grid.span_nm == pytest.approx(2.1)

    def test_degree(self, paper_grid):
        assert paper_grid.polynomial_degree == 2

    def test_detuning_levels(self, paper_grid):
        # x1=x2=0 -> tune to lambda_0 (2.1 nm); one '1' -> lambda_1
        # (1.1 nm); x1=x2=1 -> lambda_2 (0.1 nm).
        assert paper_grid.detuning_for_level_nm(0) == pytest.approx(2.1)
        assert paper_grid.detuning_for_level_nm(1) == pytest.approx(1.1)
        assert paper_grid.detuning_for_level_nm(2) == pytest.approx(0.1)


class TestGridProperties:
    @given(
        count=st.integers(min_value=1, max_value=17),
        spacing=st.floats(min_value=0.05, max_value=2.0),
    )
    def test_spacing_is_eq5(self, count, spacing):
        grid = WDMGrid(channel_count=count, spacing_nm=spacing)
        wavelengths = grid.wavelengths_nm
        if count > 1:
            np.testing.assert_allclose(np.diff(wavelengths), spacing)

    @given(count=st.integers(min_value=2, max_value=17))
    def test_anchor_is_rightmost(self, count):
        grid = WDMGrid(channel_count=count, spacing_nm=0.5, anchor_nm=1550.0)
        assert grid.wavelengths_nm[-1] == pytest.approx(1550.0)
        assert np.all(grid.wavelengths_nm[:-1] < 1550.0)

    def test_wavelength_lookup(self, paper_grid):
        assert paper_grid.wavelength_nm(0) == pytest.approx(1548.0)
        with pytest.raises(ConfigurationError):
            paper_grid.wavelength_nm(3)

    def test_channel_of(self, paper_grid):
        assert paper_grid.channel_of(1549.0) == 1
        with pytest.raises(ConfigurationError):
            paper_grid.channel_of(1549.5)

    def test_detuning_validates_ones_count(self, paper_grid):
        with pytest.raises(ConfigurationError):
            paper_grid.detuning_for_level_nm(3)
        with pytest.raises(ConfigurationError):
            paper_grid.detuning_for_level_nm(-1)


class TestFSRConstraint:
    def test_fits(self, paper_grid):
        paper_grid.validate_against_fsr(20.0)  # no raise

    def test_does_not_fit(self):
        grid = WDMGrid(channel_count=17, spacing_nm=1.0)
        with pytest.raises(DesignInfeasibleError):
            grid.validate_against_fsr(10.0)


class TestValidation:
    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(channel_count=0, spacing_nm=1.0)

    def test_bad_spacing(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(channel_count=3, spacing_nm=0.0)

    def test_bad_guard(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(channel_count=3, spacing_nm=1.0, guard_nm=0.0)

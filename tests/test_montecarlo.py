"""Tests for the Monte Carlo process-variation analysis."""

import numpy as np
import pytest

from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.simulation.montecarlo import (
    MonteCarloResult,
    VariationModel,
    run_monte_carlo,
    yield_vs_sigma,
)


class TestRunMonteCarlo:
    def test_zero_variation_gives_nominal_eye(self, rng):
        params = paper_section5a_parameters()
        result = run_monte_carlo(
            params,
            VariationModel(ring_sigma_nm=0.0, filter_sigma_nm=0.0),
            samples=5,
            rng=rng,
        )
        from repro.core.snr import worst_case_eye

        nominal = worst_case_eye(params).opening
        np.testing.assert_allclose(result.eye_openings_mw, nominal, rtol=1e-9)
        assert result.yield_fraction == 1.0

    def test_small_variation_high_yield(self, rng):
        params = paper_section5a_parameters()
        result = run_monte_carlo(
            params,
            VariationModel(ring_sigma_nm=0.01, filter_sigma_nm=0.01),
            samples=60,
            rng=rng,
        )
        assert result.yield_fraction > 0.9
        assert result.sample_count == 60
        assert result.worst_eye_mw <= result.mean_eye_mw

    def test_large_variation_degrades_eye(self, rng):
        params = paper_section5a_parameters()
        small = run_monte_carlo(
            params, VariationModel(0.005, 0.005), samples=40, rng=rng
        )
        large = run_monte_carlo(
            params, VariationModel(0.06, 0.06), samples=40, rng=rng
        )
        assert large.mean_eye_mw < small.mean_eye_mw

    def test_validation(self, rng):
        params = paper_section5a_parameters()
        with pytest.raises(ConfigurationError):
            run_monte_carlo("params", samples=2, rng=rng)
        with pytest.raises(ConfigurationError):
            run_monte_carlo(params, samples=0, rng=rng)
        with pytest.raises(ConfigurationError):
            VariationModel(ring_sigma_nm=-1.0)


class TestYieldCurve:
    def test_monotone_trend(self, rng):
        params = paper_section5a_parameters()
        curve = yield_vs_sigma(
            params, [0.005, 0.08], samples=40, rng=rng
        )
        assert curve["mean_eye_mw"][0] > curve["mean_eye_mw"][1]
        assert curve["yield_fraction"][0] >= curve["yield_fraction"][1]

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            yield_vs_sigma(paper_section5a_parameters(), [], rng=rng)


class TestResultContainer:
    def test_fields(self):
        result = MonteCarloResult(
            eye_openings_mw=np.array([0.1, -0.05, 0.2]),
            yield_fraction=2 / 3,
            mean_eye_mw=0.0833,
            worst_eye_mw=-0.05,
        )
        assert result.sample_count == 3

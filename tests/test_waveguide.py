"""Tests for passive components: splitter, coupler, waveguide, BPF."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.photonics import BandPassFilter, Coupler, Splitter, Waveguide


class TestSplitter:
    def test_equal_split(self):
        splitter = Splitter(port_count=2)
        np.testing.assert_allclose(splitter.split(10.0), [5.0, 5.0])

    def test_excess_loss(self):
        splitter = Splitter(port_count=2, excess_loss_db=3.0103)
        np.testing.assert_allclose(splitter.split(10.0), [2.5, 2.5], rtol=1e-4)

    def test_combine(self):
        splitter = Splitter(port_count=3)
        assert splitter.combine([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_combine_validates_shape(self):
        splitter = Splitter(port_count=3)
        with pytest.raises(ConfigurationError):
            splitter.combine([1.0, 2.0])

    @given(n=st.integers(min_value=1, max_value=32))
    def test_split_conserves_power(self, n):
        splitter = Splitter(port_count=n)
        assert splitter.split(7.0).sum() == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Splitter(port_count=0)
        with pytest.raises(ConfigurationError):
            Splitter(port_count=2, excess_loss_db=-1.0)


class TestCoupler:
    def test_lossless_default(self):
        assert Coupler().couple(3.0) == pytest.approx(3.0)

    def test_insertion_loss(self):
        coupler = Coupler(insertion_loss_db=3.0103)
        assert coupler.couple(2.0) == pytest.approx(1.0, rel=1e-4)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            Coupler().couple(-1.0)


class TestWaveguide:
    def test_loss_accumulates_with_length(self):
        waveguide = Waveguide(length_cm=2.0, loss_db_per_cm=2.0)
        assert waveguide.loss_db == pytest.approx(4.0)
        assert waveguide.propagate(1.0) == pytest.approx(10 ** (-0.4))

    def test_zero_length_is_transparent(self):
        assert Waveguide(length_cm=0.0).propagate(5.0) == pytest.approx(5.0)


class TestBandPassFilter:
    def test_passband_and_rejection(self):
        bpf = BandPassFilter(
            pass_low_nm=1547.0, pass_high_nm=1551.0, rejection_db=60.0
        )
        assert bpf.transmission(1550.0) == pytest.approx(1.0)
        assert bpf.transmission(1540.0) == pytest.approx(1e-6)

    def test_pump_absorption_scenario(self):
        # The architecture's BPF passes the probe comb and absorbs the
        # pump one FSR below (Fig. 3).
        bpf = BandPassFilter(pass_low_nm=1547.0, pass_high_nm=1551.0)
        powers = np.array([1.0, 1.0, 1.0, 600.0])
        wavelengths = np.array([1548.0, 1549.0, 1550.0, 1530.0])
        filtered = bpf.filter_power(powers, wavelengths)
        np.testing.assert_allclose(filtered[:3], powers[:3])
        assert filtered[3] < 1e-3

    def test_in_band_loss(self):
        bpf = BandPassFilter(
            pass_low_nm=1547.0, pass_high_nm=1551.0, insertion_loss_db=3.0103
        )
        assert bpf.transmission(1550.0) == pytest.approx(0.5, rel=1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BandPassFilter(pass_low_nm=1551.0, pass_high_nm=1547.0)
        bpf = BandPassFilter(pass_low_nm=1547.0, pass_high_nm=1551.0)
        with pytest.raises(ConfigurationError):
            bpf.transmission(-1.0)
        with pytest.raises(ConfigurationError):
            bpf.filter_power(np.array([-1.0]), np.array([1550.0]))

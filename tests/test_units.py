"""Tests for repro.units conversions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError


class TestDbConversions:
    def test_db_to_linear_known_values(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)
        assert units.db_to_linear(10.0) == pytest.approx(10.0)
        assert units.db_to_linear(3.0) == pytest.approx(1.995, abs=1e-3)

    def test_linear_to_db_known_values(self):
        assert units.linear_to_db(1.0) == pytest.approx(0.0)
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            units.linear_to_db(0.0)
        with pytest.raises(ConfigurationError):
            units.linear_to_db(-1.0)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_roundtrip(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )

    def test_paper_il_conversion(self):
        # Section V-A: IL = 4.5 dB -> IL% = 0.3548
        assert units.db_loss_to_transmission(4.5) == pytest.approx(0.3548, abs=2e-4)

    def test_paper_er_conversion(self):
        # Section V-A: ER = 13.22 dB -> ER% = 0.0476
        assert units.db_loss_to_transmission(13.22) == pytest.approx(0.0476, abs=2e-4)

    def test_loss_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            units.db_loss_to_transmission(-1.0)

    def test_transmission_to_db_loss(self):
        assert units.transmission_to_db_loss(0.5) == pytest.approx(3.0103, abs=1e-3)
        with pytest.raises(ConfigurationError):
            units.transmission_to_db_loss(1.5)
        with pytest.raises(ConfigurationError):
            units.transmission_to_db_loss(0.0)

    def test_array_support(self):
        out = units.db_loss_to_transmission(np.array([0.0, 10.0]))
        np.testing.assert_allclose(out, [1.0, 0.1])


class TestPowerConversions:
    def test_mw_w_roundtrip(self):
        assert units.w_to_mw(units.mw_to_w(123.4)) == pytest.approx(123.4)

    def test_dbm(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)
        with pytest.raises(ConfigurationError):
            units.mw_to_dbm(0.0)

    def test_energy_conversions(self):
        assert units.joules_to_picojoules(1e-12) == pytest.approx(1.0)
        assert units.picojoules_to_joules(20.1) == pytest.approx(20.1e-12)


class TestSpectralConversions:
    def test_c_band_frequency(self):
        freq = units.wavelength_nm_to_frequency_hz(1550.0)
        assert freq == pytest.approx(193.4e12, rel=1e-3)

    def test_roundtrip(self):
        wl = units.frequency_hz_to_wavelength_nm(
            units.wavelength_nm_to_frequency_hz(1310.0)
        )
        assert wl == pytest.approx(1310.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            units.wavelength_nm_to_frequency_hz(0.0)
        with pytest.raises(ConfigurationError):
            units.frequency_hz_to_wavelength_nm(-1.0)

    def test_fsr_from_group_index(self):
        # lambda^2/(n_g * L): 1550 nm, n_g = 4.3, L = 60 um -> ~9.3 nm
        fsr = units.fsr_nm_from_group_index(1550.0, 4.3, 60.0)
        assert fsr == pytest.approx(1550.0**2 / (4.3 * 60e3))


class TestValidators:
    def test_validate_fraction(self):
        assert units.validate_fraction(0.5, "x") == 0.5
        assert units.validate_fraction(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            units.validate_fraction(0.0, "x")
        assert units.validate_fraction(0.0, "x", allow_zero=True) == 0.0
        with pytest.raises(ConfigurationError):
            units.validate_fraction(1.5, "x")

    def test_validate_positive(self):
        assert units.validate_positive(2.0, "x") == 2.0
        with pytest.raises(ConfigurationError):
            units.validate_positive(0.0, "x")

    def test_validate_non_negative(self):
        assert units.validate_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            units.validate_non_negative(-0.1, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            units.validate_positive(-1.0, "my_param")

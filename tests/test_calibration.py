"""Tests for the calibration layer (frozen constants stay reproducible)."""

import pytest

from repro.core.calibration import (
    PAPER_FIG5_QUOTES,
    calibrate_coarse_linewidths,
    calibrate_dense_profile,
    dense_profile_with_fwhm,
    fig5_report,
)
from repro.photonics.devices import COARSE_RING_PROFILE, DENSE_RING_PROFILE


class TestFig5Report:
    def test_frozen_profile_reproduces_quotes(self):
        report = fig5_report()
        # All scalar quotes within 10 % of the paper's numbers, except the
        # smallest crosstalk term (0.0002) where rounding dominates.
        for key, paper_value in report.paper.items():
            if isinstance(paper_value, tuple):
                continue
            tolerance = 0.3 if key == "t_lambda0_case_a" else 0.1
            assert report.model[key] == pytest.approx(
                paper_value, rel=tolerance
            ), key

    def test_worst_relative_error_small(self):
        assert fig5_report().worst_relative_error() < 0.3

    def test_quotes_table_complete(self):
        assert set(PAPER_FIG5_QUOTES) == {
            "t_lambda2_case_a",
            "t_lambda1_case_a",
            "t_lambda0_case_a",
            "received_case_a_mw",
            "t_lambda0_case_b",
            "received_case_b_mw",
            "zero_band_mw",
            "one_band_mw",
        }


class TestCoarseCalibration:
    def test_refit_recovers_frozen_linewidths(self):
        result = calibrate_coarse_linewidths()
        assert result["modulator_fwhm_nm"] == pytest.approx(
            COARSE_RING_PROFILE.modulator.fwhm_nm, abs=0.02
        )
        assert result["filter_fwhm_nm"] == pytest.approx(
            COARSE_RING_PROFILE.filter.fwhm_nm, abs=0.02
        )
        assert result["worst_relative_error"] < 0.3


class TestDenseCalibration:
    def test_refit_recovers_frozen_constants(self):
        result = calibrate_dense_profile()
        assert result["fwhm_nm"] == pytest.approx(
            DENSE_RING_PROFILE.filter.fwhm_nm, abs=0.02
        )
        assert result["achieved_optimum_nm"] == pytest.approx(0.165, abs=0.02)

    def test_candidate_profile_builder(self):
        profile = dense_profile_with_fwhm(0.1)
        assert profile.filter.fwhm_nm == pytest.approx(0.1, rel=1e-6)
        assert profile.modulator.through_floor == pytest.approx(0.1, abs=1e-9)

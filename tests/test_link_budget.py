"""Tests for the link budget (Fig. 5(c))."""

import numpy as np
import pytest

from repro.core.link_budget import received_power_table
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError


@pytest.fixture
def budget():
    return received_power_table(paper_section5a_parameters())


class TestFig5c:
    def test_zero_band_matches_paper(self, budget):
        # Paper: data '0' received in 0.092-0.099 mW.
        low, high = budget.zero_band_mw
        assert low == pytest.approx(0.092, abs=0.004)
        assert high == pytest.approx(0.099, abs=0.004)

    def test_one_band_matches_paper(self, budget):
        # Paper: data '1' received in 0.477-0.482 mW.
        low, high = budget.one_band_mw
        assert low == pytest.approx(0.477, abs=0.006)
        assert high == pytest.approx(0.482, abs=0.006)

    def test_bands_are_separated(self, budget):
        # The paper's validation claim: '0' and '1' are distinguishable,
        # "thus validating the proposed circuit".
        assert budget.bands_separated
        assert budget.eye_opening_mw > 0.3

    def test_table_shape(self, budget):
        assert budget.power_mw.shape == (8, 3)
        assert budget.patterns.shape == (8, 3)

    def test_threshold_between_bands(self, budget):
        threshold = budget.decision_threshold_mw
        assert budget.zero_band_mw[1] < threshold < budget.one_band_mw[0]

    def test_describe(self, budget):
        assert "separated" in budget.describe()


class TestScaling:
    def test_power_scales_with_probe(self):
        base = received_power_table(paper_section5a_parameters())
        double = received_power_table(
            paper_section5a_parameters(probe_power_mw=2.0)
        )
        np.testing.assert_allclose(
            double.power_mw, 2.0 * base.power_mw, rtol=1e-12
        )

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            received_power_table("not params")

"""Tests for the Bitstream value class."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import Bitstream

probabilities = st.floats(min_value=0.0, max_value=1.0)
lengths = st.integers(min_value=1, max_value=4096)


class TestConstruction:
    def test_from_list(self):
        stream = Bitstream([0, 1, 1, 0])
        assert len(stream) == 4
        assert stream.probability == pytest.approx(0.5)

    def test_paper_fig1_stream(self):
        # Fig. 1(b): x1 = 0,0,0,1,1,0,1,1 encodes 4/8.
        stream = Bitstream([0, 0, 0, 1, 1, 0, 1, 1])
        assert stream.probability == pytest.approx(0.5)
        assert stream.ones_count == 4

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            Bitstream([0, 2, 1])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Bitstream([])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            Bitstream(np.zeros((2, 2), dtype=int))

    def test_immutability(self):
        stream = Bitstream([0, 1])
        with pytest.raises(ValueError):
            stream.bits[0] = 1


class TestProtocol:
    def test_equality_and_hash(self):
        a = Bitstream([0, 1, 1])
        b = Bitstream([0, 1, 1])
        c = Bitstream([1, 1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_indexing_and_slicing(self):
        stream = Bitstream([0, 1, 1, 0])
        assert stream[1] == 1
        assert isinstance(stream[1:3], Bitstream)
        assert stream[1:3].ones_count == 2

    def test_iteration(self):
        assert list(Bitstream([1, 0, 1])) == [1, 0, 1]

    def test_repr_contains_probability(self):
        assert "p=0.5000" in repr(Bitstream([0, 1]))


class TestAlgebra:
    def test_and_multiplies(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        assert (a & b).bits.tolist() == [1, 0, 0, 0]

    def test_not_complements(self):
        a = Bitstream([1, 0, 1, 1])
        assert (~a).probability == pytest.approx(1 - a.probability)

    def test_xor_or(self):
        a = Bitstream([1, 1, 0, 0])
        b = Bitstream([1, 0, 1, 0])
        assert (a ^ b).bits.tolist() == [0, 1, 1, 0]
        assert (a | b).bits.tolist() == [1, 1, 1, 0]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Bitstream([1, 0]) & Bitstream([1, 0, 1])


class TestGenerators:
    @given(p=probabilities, n=lengths)
    def test_bernoulli_within_clt_bounds(self, p, n):
        rng = np.random.default_rng(42)
        stream = Bitstream.from_probability(p, n, rng)
        sigma = np.sqrt(max(p * (1 - p), 1e-12) / n)
        assert abs(stream.probability - p) <= max(6 * sigma, 1.0 / n + 1e-12)

    @given(p=probabilities, n=lengths)
    def test_exact_encodes_rounded_count(self, p, n):
        stream = Bitstream.exact(p, n)
        assert stream.ones_count == round(p * n)

    def test_exact_spreads_ones(self):
        stream = Bitstream.exact(0.5, 8)
        # Evenly spread: no run of more than one consecutive one.
        bits = stream.bits
        assert stream.ones_count == 4
        assert np.all((bits[:-1] + bits[1:]) <= 1 + 1)  # trivially true
        # Stronger: ones in each half are balanced.
        assert bits[:4].sum() == 2

    def test_from_probability_validation(self, rng):
        with pytest.raises(ConfigurationError):
            Bitstream.from_probability(1.5, 8, rng)
        with pytest.raises(ConfigurationError):
            Bitstream.from_probability(0.5, 0, rng)

    def test_resampled_preserves_probability_statistically(self, rng):
        stream = Bitstream.exact(0.25, 64)
        resampled = stream.resampled(100_000, rng)
        assert resampled.probability == pytest.approx(0.25, abs=0.01)
